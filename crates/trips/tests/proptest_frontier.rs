//! Property-based validation of the frontier-pruned, arena-reused engine:
//! on random small streams it must agree with (a) the retained baseline
//! engine (full-row snapshots, fresh tables) and (b) the brute-force
//! earliest-arrival reference — on trips, hops, and distance sums alike.

use proptest::prelude::*;
use saturn_linkstream::{Directedness, LinkStreamBuilder};
use saturn_trips::dp::{baseline, NullSink};
use saturn_trips::reference::earliest_arrival_bruteforce;
use saturn_trips::{
    earliest_arrival_dp, earliest_arrival_dp_in, earliest_arrival_dp_tile_in, DpOptions,
    EngineArena, TargetSet, Timeline, TripSink,
};

#[derive(Default)]
struct Collect(Vec<(u32, u32, u32, u32, u32)>);

impl TripSink for Collect {
    fn minimal_trip(&mut self, u: u32, v: u32, dep: u32, arr: u32, hops: u32) {
        self.0.push((u, v, dep, arr, hops));
    }
}

/// A random stream over <= 6 nodes and <= 14 events in [0, 40].
fn arb_stream(directed: bool) -> impl Strategy<Value = saturn_linkstream::LinkStream> {
    let d = if directed { Directedness::Directed } else { Directedness::Undirected };
    proptest::collection::vec((0u32..6, 0u32..6, 0i64..41), 1..14).prop_filter_map(
        "needs at least one non-loop event",
        move |events| {
            let mut b = LinkStreamBuilder::indexed(d, 6);
            for (u, v, t) in events {
                if u != v {
                    b.add_indexed(u, v, t);
                }
            }
            if b.is_empty() {
                return None;
            }
            Some(b.build().expect("non-empty"))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Frontier engine (delta propagation on AND off) == baseline engine:
    /// identical trip streams (same order), traversal counts, and distance
    /// sums — undirected.
    #[test]
    fn frontier_equals_baseline_undirected(stream in arb_stream(false), k in 1u64..24) {
        let k = if stream.span() == 0 { 1 } else { k };
        let timeline = Timeline::aggregated(&stream, k);
        let options = DpOptions { collect_distances: true, ..Default::default() };
        let targets = TargetSet::all(6);

        let mut slow = Collect::default();
        let bs = baseline::earliest_arrival_dp(&timeline, &targets, &mut slow, options);
        for no_delta in [false, true] {
            let options = DpOptions { no_delta_propagation: no_delta, ..options };
            let mut fast = Collect::default();
            let fs = earliest_arrival_dp(&timeline, &targets, &mut fast, options);
            prop_assert_eq!(&fast.0, &slow.0, "no_delta={}", no_delta);
            prop_assert_eq!(fs.trips, bs.trips);
            prop_assert_eq!(fs.traversals, bs.traversals);
            let (fd, bd) = (fs.distances.unwrap(), bs.distances.unwrap());
            prop_assert_eq!(fd.sum_dtime_steps, bd.sum_dtime_steps);
            prop_assert_eq!(fd.sum_dhops, bd.sum_dhops);
            prop_assert_eq!(fd.finite_triples, bd.finite_triples);
        }
    }

    /// Same equivalence for directed streams on the exact timeline.
    #[test]
    fn frontier_equals_baseline_directed_exact(stream in arb_stream(true)) {
        let timeline = Timeline::exact(&stream);
        let options = DpOptions { collect_distances: true, ..Default::default() };
        let targets = TargetSet::all(6);

        let mut slow = Collect::default();
        let bs = baseline::earliest_arrival_dp(&timeline, &targets, &mut slow, options);
        for no_delta in [false, true] {
            let options = DpOptions { no_delta_propagation: no_delta, ..options };
            let mut fast = Collect::default();
            let fs = earliest_arrival_dp(&timeline, &targets, &mut fast, options);
            prop_assert_eq!(&fast.0, &slow.0, "no_delta={}", no_delta);
            prop_assert_eq!(fs.trips, bs.trips);
            let (fd, bd) = (fs.distances.unwrap(), bs.distances.unwrap());
            prop_assert_eq!(fd.sum_dtime_steps, bd.sum_dtime_steps);
            prop_assert_eq!(fd.sum_dhops, bd.sum_dhops);
            prop_assert_eq!(fd.finite_triples, bd.finite_triples);
        }
    }

    /// Frontier engine == naive earliest-arrival reference: earliest
    /// arrivals, minimum hops, and the three distance sums all match the
    /// per-departure-step brute-force function.
    #[test]
    fn frontier_matches_naive_reference(stream in arb_stream(false), k in 1u64..20) {
        let k = if stream.span() == 0 { 1 } else { k };
        let timeline = Timeline::aggregated(&stream, k);
        let ea = earliest_arrival_bruteforce(&timeline, 3_000_000);

        // reference distance sums from the sampled EA functions
        let mut ref_dtime: i128 = 0;
        let mut ref_dhops: i128 = 0;
        let mut ref_triples: i128 = 0;
        for per_step in ea.values() {
            for (t, entry) in per_step.iter().enumerate() {
                if let Some((arr, hops)) = entry {
                    ref_dtime += (*arr as i128) - (t as i128) + 1;
                    ref_dhops += *hops as i128;
                    ref_triples += 1;
                }
            }
        }

        let stats = earliest_arrival_dp(
            &timeline,
            &TargetSet::all(6),
            &mut NullSink,
            DpOptions { collect_distances: true, ..Default::default() },
        );
        let d = stats.distances.unwrap();
        prop_assert_eq!(d.sum_dtime_steps, ref_dtime);
        prop_assert_eq!(d.sum_dhops, ref_dhops);
        prop_assert_eq!(d.finite_triples, ref_triples);
    }

    /// One arena carried across runs over random streams and scales is
    /// indistinguishable from fresh allocation every run — the epoch
    /// stamping never leaks state between scales. Delta propagation is
    /// toggled per run, so stale watermarks / row marks / dirty bitmaps
    /// from a previous scale (whose pair ids mean different edges) must
    /// stay dead too.
    #[test]
    fn arena_epoch_reuse_never_leaks(
        stream in arb_stream(false),
        ks in proptest::collection::vec(1u64..24, 1..6),
    ) {
        let mut arena = EngineArena::new();
        for (i, &k) in ks.iter().enumerate() {
            let k = if stream.span() == 0 { 1 } else { k };
            let timeline = Timeline::aggregated(&stream, k);
            let options = DpOptions {
                collect_distances: true,
                no_delta_propagation: i % 2 == 1,
                ..Default::default()
            };

            let mut reused = Collect::default();
            let rs = earliest_arrival_dp_in(
                &mut arena, &timeline, &TargetSet::all(6), &mut reused, options,
            );
            let mut fresh = Collect::default();
            let fs = earliest_arrival_dp(&timeline, &TargetSet::all(6), &mut fresh, options);

            prop_assert_eq!(reused.0, fresh.0);
            prop_assert_eq!(rs.trips, fs.trips);
            let (rd, fd) = (rs.distances.unwrap(), fs.distances.unwrap());
            prop_assert_eq!(rd.sum_dtime_steps, fd.sum_dtime_steps);
            prop_assert_eq!(rd.sum_dhops, fd.sum_dhops);
            prop_assert_eq!(rd.finite_triples, fd.finite_triples);
        }
    }

    /// Sampled target sets agree between the two engines as well (frontier
    /// bookkeeping is per-column and must respect the restriction).
    #[test]
    fn frontier_equals_baseline_with_sampled_targets(
        stream in arb_stream(true),
        k in 1u64..16,
        targets in proptest::collection::btree_set(0u32..6, 1..4),
    ) {
        let k = if stream.span() == 0 { 1 } else { k };
        let timeline = Timeline::aggregated(&stream, k);
        let nodes: Vec<u32> = targets.into_iter().collect();
        let tset = TargetSet::from_nodes(6, &nodes);

        let mut fast = Collect::default();
        earliest_arrival_dp(&timeline, &tset, &mut fast, DpOptions::default());
        let mut slow = Collect::default();
        baseline::earliest_arrival_dp(&timeline, &tset, &mut slow, DpOptions::default());
        prop_assert_eq!(fast.0, slow.0);
    }

    /// Target-tiled execution partitions the untiled run exactly: for any
    /// tile size, one arena carried across all tiles yields trips, trip
    /// counts, and distance sums that merge to the full run's. The untiled
    /// reference runs with delta propagation *off* while the tiles run with
    /// the sampled setting, so the partition property holds across engine
    /// modes, not just within one.
    #[test]
    fn tiled_runs_merge_to_the_untiled_run(
        stream in arb_stream(false),
        k in 1u64..24,
        tile in 1usize..7,
        tiles_no_delta in any::<bool>(),
    ) {
        let k = if stream.span() == 0 { 1 } else { k };
        let timeline = Timeline::aggregated(&stream, k);
        let targets = TargetSet::all(6);
        let options = DpOptions {
            collect_distances: true,
            no_delta_propagation: true,
            ..Default::default()
        };

        let mut full_sink = Collect::default();
        let full = earliest_arrival_dp(&timeline, &targets, &mut full_sink, options);
        let mut full_trips = full_sink.0;
        full_trips.sort_unstable();

        let tile_options = DpOptions { no_delta_propagation: tiles_no_delta, ..options };
        let mut arena = EngineArena::new();
        let mut trips = Vec::new();
        let mut count = 0u64;
        let mut dtime = 0i128;
        let mut dhops = 0i128;
        let mut triples = 0i128;
        for (start, len) in targets.tile_ranges(tile) {
            let mut sink = Collect::default();
            let stats = earliest_arrival_dp_tile_in(
                &mut arena, &timeline, &targets, start, len as usize, &mut sink,
                tile_options,
            );
            trips.extend(sink.0);
            count += stats.trips;
            let d = stats.distances.unwrap();
            dtime += d.sum_dtime_steps;
            dhops += d.sum_dhops;
            triples += d.finite_triples;
        }
        trips.sort_unstable();
        prop_assert_eq!(trips, full_trips);
        prop_assert_eq!(count, full.trips);
        let fd = full.distances.unwrap();
        prop_assert_eq!(dtime, fd.sum_dtime_steps);
        prop_assert_eq!(dhops, fd.sum_dhops);
        prop_assert_eq!(triples, fd.finite_triples);
    }

    /// The degree-1 snapshot bypass and delta propagation are invisible in
    /// every combination on random streams, both directednesses: the full
    /// 2×2 matrix of {degree-1 on/off} × {delta on/off} yields one trip
    /// stream (order included) and one set of stats.
    #[test]
    fn degree1_and_delta_matrix_is_invisible(
        stream in arb_stream(true),
        k in 1u64..24,
        directed_timeline in any::<bool>(),
    ) {
        let k = if stream.span() == 0 { 1 } else { k };
        let timeline = if directed_timeline {
            Timeline::exact(&stream)
        } else {
            Timeline::aggregated(&stream, k)
        };
        let options = DpOptions { collect_distances: true, ..Default::default() };
        let targets = TargetSet::all(6);

        let mut reference = Collect::default();
        let rs = earliest_arrival_dp(&timeline, &targets, &mut reference, options);
        for no_degree1 in [false, true] {
            for no_delta in [false, true] {
                if !no_degree1 && !no_delta {
                    continue; // the reference itself
                }
                let mut run = Collect::default();
                let os = earliest_arrival_dp(
                    &timeline,
                    &targets,
                    &mut run,
                    DpOptions {
                        no_degree1_fast_path: no_degree1,
                        no_delta_propagation: no_delta,
                        ..options
                    },
                );
                prop_assert_eq!(
                    &run.0, &reference.0,
                    "no_degree1={} no_delta={}", no_degree1, no_delta
                );
                prop_assert_eq!(os.trips, rs.trips);
                prop_assert_eq!(os.traversals, rs.traversals);
                let (od, rd) = (os.distances.unwrap(), rs.distances.unwrap());
                prop_assert_eq!(od.sum_dtime_steps, rd.sum_dtime_steps);
                prop_assert_eq!(od.sum_dhops, rd.sum_dhops);
                prop_assert_eq!(od.finite_triples, rd.finite_triples);
            }
        }
    }
}
