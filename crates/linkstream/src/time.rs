//! Integer-tick timestamps.
//!
//! The paper's method works for both discrete and continuous time. We model
//! time as signed 64-bit *ticks* at an arbitrary resolution chosen by the
//! data producer (the four datasets of the paper use 1-second resolution).
//! Continuous time is supported by picking a resolution finer than any
//! meaningful gap; every algorithm in the workspace only relies on order and
//! differences of ticks.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in time, measured in integer ticks.
///
/// `Time` is a transparent newtype over `i64`; arithmetic with tick counts is
/// provided through `Add<i64>`/`Sub<i64>`, and `Sub<Time>` yields the signed
/// tick distance between two instants.
///
/// ```
/// use saturn_linkstream::Time;
/// let a = Time::new(10);
/// let b = a + 5;
/// assert_eq!(b - a, 5);
/// assert_eq!(b.ticks(), 15);
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Time(i64);

impl Time {
    /// The smallest representable instant.
    pub const MIN: Time = Time(i64::MIN);
    /// The largest representable instant.
    pub const MAX: Time = Time(i64::MAX);

    /// Creates a timestamp from a raw tick count.
    pub const fn new(ticks: i64) -> Self {
        Time(ticks)
    }

    /// Returns the raw tick count.
    pub const fn ticks(self) -> i64 {
        self.0
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<i64> for Time {
    fn from(t: i64) -> Self {
        Time(t)
    }
}

impl From<Time> for i64 {
    fn from(t: Time) -> Self {
        t.0
    }
}

impl Add<i64> for Time {
    type Output = Time;
    fn add(self, rhs: i64) -> Time {
        Time(self.0 + rhs)
    }
}

impl AddAssign<i64> for Time {
    fn add_assign(&mut self, rhs: i64) {
        self.0 += rhs;
    }
}

impl Sub<i64> for Time {
    type Output = Time;
    fn sub(self, rhs: i64) -> Time {
        Time(self.0 - rhs)
    }
}

impl Sub<Time> for Time {
    /// Signed distance in ticks between two instants.
    type Output = i64;
    fn sub(self, rhs: Time) -> i64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Time::new(100);
        assert_eq!((t + 20).ticks(), 120);
        assert_eq!((t - 20).ticks(), 80);
        assert_eq!(Time::new(120) - t, 20);
        assert_eq!(t - Time::new(120), -20);
    }

    #[test]
    fn ordering_follows_ticks() {
        assert!(Time::new(-5) < Time::new(0));
        assert!(Time::new(3) < Time::new(4));
        assert_eq!(Time::new(7), Time::from(7));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(Time::new(42).to_string(), "42");
        assert_eq!(format!("{:?}", Time::new(42)), "t42");
    }
}
