//! Plain-text link-stream readers and writers.
//!
//! Two widely used layouts are accepted by the single lenient parser:
//!
//! * **plain** — one event per line, `u v t` (whitespace-separated);
//! * **KONECT-style** — `u v w t` where the third column is an ignored
//!   weight. This is the `out.*` layout of the KONECT repository hosting the
//!   four datasets evaluated in the paper (UC Irvine, Facebook wall posts,
//!   Enron, Manufacturing), so the genuine traces can be dropped in directly.
//!
//! Lines that are empty or start with `%` or `#` are skipped. Timestamps must
//! be integers (ticks); node names are arbitrary whitespace-free tokens.

use crate::{Directedness, LinkStream, LinkStreamBuilder, ParseError};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Parses a link stream from any buffered reader.
///
/// ```
/// use saturn_linkstream::{io, Directedness};
/// let text = "% a comment\n\
///             alice bob 10\n\
///             bob carol 1 25\n"; // KONECT row: weight 1, time 25
/// let s = io::read_stream(text.as_bytes(), Directedness::Directed).unwrap();
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.span(), 15);
/// ```
pub fn read_stream<R: std::io::Read>(
    reader: R,
    directedness: Directedness,
) -> Result<LinkStream, ParseError> {
    let mut builder = LinkStreamBuilder::new(directedness);
    let buf = BufReader::new(reader);
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        if let Some(event) = parse_line(&line, idx + 1)? {
            builder.add(event.u, event.v, event.t);
        }
    }
    Ok(builder.build()?)
}

/// One event parsed out of a trace line, borrowing the node labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParsedEvent<'a> {
    /// Source node label.
    pub u: &'a str,
    /// Destination node label.
    pub v: &'a str,
    /// Timestamp in ticks.
    pub t: i64,
}

/// Parses one trace line in either accepted layout (`u v t` plain, or
/// `u v w t` KONECT with an ignored weight). Returns `None` for lines a
/// trace reader skips — blank, `%`, or `#`. `lineno` is 1-based and only
/// feeds error messages.
pub fn parse_line(line: &str, lineno: usize) -> Result<Option<ParsedEvent<'_>>, ParseError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('%') || trimmed.starts_with('#') {
        return Ok(None);
    }
    let tokens: Vec<&str> = trimmed.split_whitespace().collect();
    let (u, v, t_tok) = match tokens.as_slice() {
        [u, v, t] => (*u, *v, *t),
        [u, v, _w, t] => (*u, *v, *t),
        _ => {
            return Err(ParseError::Malformed {
                line: lineno,
                reason: format!(
                    "expected 3 (u v t) or 4 (u v w t) columns, found {}",
                    tokens.len()
                ),
            })
        }
    };
    let t: i64 = t_tok.parse().map_err(|_| ParseError::Malformed {
        line: lineno,
        reason: format!("timestamp `{t_tok}` is not an integer tick count"),
    })?;
    Ok(Some(ParsedEvent { u, v, t }))
}

/// Parses every event of `text` without building a stream — the append
/// path of an ingest session, which validates a whole batch *before*
/// committing any of it to its builder.
pub fn parse_events(text: &str) -> Result<Vec<ParsedEvent<'_>>, ParseError> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if let Some(event) = parse_line(line, idx + 1)? {
            events.push(event);
        }
    }
    Ok(events)
}

/// Parses a link stream from a file path.
pub fn read_path(
    path: impl AsRef<Path>,
    directedness: Directedness,
) -> Result<LinkStream, ParseError> {
    read_stream(File::open(path)?, directedness)
}

/// Parses a link stream from an in-memory string.
pub fn read_str(text: &str, directedness: Directedness) -> Result<LinkStream, ParseError> {
    read_stream(text.as_bytes(), directedness)
}

/// Writes a stream in plain `u v t` layout (one event per line, labels as
/// stored). The output round-trips through [`read_str`].
pub fn write_stream<W: Write>(stream: &LinkStream, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for link in stream.events() {
        writeln!(w, "{} {} {}", stream.label(link.u), stream.label(link.v), link.t)?;
    }
    w.flush()
}

/// Writes a stream to a file in plain `u v t` layout.
pub fn write_path(stream: &LinkStream, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_stream(stream, File::create(path)?)
}

/// Serializes a stream to a `String` in plain `u v t` layout.
pub fn to_string(stream: &LinkStream) -> String {
    let mut out = Vec::new();
    write_stream(stream, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("labels and integers are valid UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_konect_rows() {
        let text = "# header\n a b 3 \n\n% note\nb c 7 12\n";
        let s = read_str(text, Directedness::Directed).unwrap();
        assert_eq!(s.len(), 2);
        let ts: Vec<i64> = s.events().iter().map(|l| l.t.ticks()).collect();
        assert_eq!(ts, vec![3, 12]);
    }

    #[test]
    fn rejects_wrong_column_count() {
        let err = read_str("a b\n", Directedness::Directed).unwrap_err();
        match err {
            ParseError::Malformed { line, reason } => {
                assert_eq!(line, 1);
                assert!(reason.contains("columns"));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn rejects_non_integer_timestamp() {
        let err = read_str("a b 3.5\n", Directedness::Directed).unwrap_err();
        match err {
            ParseError::Malformed { line: 1, reason } => {
                assert!(reason.contains("3.5"));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn rejects_empty_input() {
        let err = read_str("% nothing\n", Directedness::Directed).unwrap_err();
        assert!(matches!(err, ParseError::Build(crate::BuildError::Empty)));
    }

    #[test]
    fn negative_timestamps_are_allowed() {
        let s = read_str("a b -5\na c 5\n", Directedness::Directed).unwrap();
        assert_eq!(s.t_begin().ticks(), -5);
        assert_eq!(s.span(), 10);
    }

    #[test]
    fn round_trip() {
        let text = "u1 u2 0\nu2 u3 4\nu1 u3 9\n";
        let s = read_str(text, Directedness::Directed).unwrap();
        let serialized = to_string(&s);
        let s2 = read_str(&serialized, Directedness::Directed).unwrap();
        assert_eq!(s.events(), s2.events());
        assert_eq!(s.labels(), s2.labels());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("saturn-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.txt");
        let s = read_str("a b 1\nb c 2\n", Directedness::Undirected).unwrap();
        write_path(&s, &path).unwrap();
        let s2 = read_path(&path, Directedness::Undirected).unwrap();
        assert_eq!(s.events(), s2.events());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_events_matches_the_stream_reader() {
        let text = "# header\n a b 3 \n\n% note\nb c 7 12\n";
        let events = parse_events(text).unwrap();
        assert_eq!(
            events,
            vec![ParsedEvent { u: "a", v: "b", t: 3 }, ParsedEvent { u: "b", v: "c", t: 12 }]
        );
        // errors carry the 1-based line number of the offending line
        let err = parse_events("a b 1\nx y\n").unwrap_err();
        match err {
            ParseError::Malformed { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("columns"));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn missing_file_is_io_error() {
        let err =
            read_path("/nonexistent/saturn/file.txt", Directedness::Directed).unwrap_err();
        assert!(matches!(err, ParseError::Io(_)));
    }
}
