//! Exact partition of a study period into `K` equal disjoint windows.
//!
//! Definition 1 of the paper chooses `Δ = T/K` for an integer `K >= 1` and
//! forms the windows `[(k-1)Δ, kΔ)`. With integer-tick timestamps, `Δ` is the
//! rational `span/K`; this module maps instants to window indices with exact
//! integer arithmetic so that no floating-point boundary artefact can move an
//! event across windows.

use crate::{Link, LinkStream, Time};
use serde::Serialize;
use std::fmt;

/// Errors raised when constructing a [`WindowPartition`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowError {
    /// `k` must be at least one.
    ZeroWindows,
    /// A zero-length study period can only form the single window `K = 1`.
    ZeroSpanNeedsSingleWindow {
        /// The requested number of windows.
        k: u64,
    },
}

impl fmt::Display for WindowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowError::ZeroWindows => write!(f, "the number of windows K must be >= 1"),
            WindowError::ZeroSpanNeedsSingleWindow { k } => {
                write!(f, "study period has zero length; K must be 1 (got {k})")
            }
        }
    }
}

impl std::error::Error for WindowError {}

/// The partition of `[t_begin, t_end]` into `k` windows of equal length
/// `Δ = (t_end - t_begin)/k`.
///
/// Window `w` (0-based) covers the half-open real interval
/// `[t_begin + w·Δ, t_begin + (w+1)·Δ)`; the final instant `t_end` is
/// assigned to the last window.
///
/// ```
/// use saturn_linkstream::{Time, WindowPartition};
/// let p = WindowPartition::new(Time::new(0), Time::new(10), 4).unwrap();
/// assert_eq!(p.delta_ticks(), 2.5);
/// assert_eq!(p.index(Time::new(0)), 0);
/// assert_eq!(p.index(Time::new(2)), 0);  // 2 < 2.5
/// assert_eq!(p.index(Time::new(3)), 1);  // 2.5 <= 3 < 5
/// assert_eq!(p.index(Time::new(10)), 3); // t_end clamps into the last window
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct WindowPartition {
    t_begin: Time,
    span: i64,
    k: u64,
}

impl WindowPartition {
    /// Creates the partition of `[t_begin, t_end]` into `k` equal windows.
    pub fn new(t_begin: Time, t_end: Time, k: u64) -> Result<Self, WindowError> {
        if k == 0 {
            return Err(WindowError::ZeroWindows);
        }
        let span = t_end - t_begin;
        assert!(span >= 0, "t_end must not precede t_begin");
        if span == 0 && k != 1 {
            return Err(WindowError::ZeroSpanNeedsSingleWindow { k });
        }
        Ok(WindowPartition { t_begin, span, k })
    }

    /// Number of windows `K`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Start of the study period.
    pub fn t_begin(&self) -> Time {
        self.t_begin
    }

    /// Length of the study period in ticks.
    pub fn span(&self) -> i64 {
        self.span
    }

    /// Window length `Δ = span/K` in ticks, as a float (for reporting; all
    /// index computations are exact).
    pub fn delta_ticks(&self) -> f64 {
        self.span as f64 / self.k as f64
    }

    /// Maps an instant inside the study period to its 0-based window index.
    ///
    /// # Panics
    /// Panics in debug builds if `t` lies outside the study period.
    pub fn index(&self, t: Time) -> u64 {
        let off = t - self.t_begin;
        debug_assert!(off >= 0 && off <= self.span, "instant {t} outside study period");
        if self.span == 0 {
            return 0;
        }
        let idx = (off as i128 * self.k as i128 / self.span as i128) as u64;
        idx.min(self.k - 1)
    }

    /// Real-valued bounds `[lo, hi)` of window `w`, in ticks from the origin.
    pub fn window_bounds(&self, w: u64) -> (f64, f64) {
        let d = self.delta_ticks();
        let base = self.t_begin.ticks() as f64;
        (base + w as f64 * d, base + (w + 1) as f64 * d)
    }

    /// Iterates over the non-empty windows of `stream` in ascending order,
    /// yielding `(window_index, events_in_window)`.
    ///
    /// The events of one window form a contiguous slice of the stream because
    /// events are time-sorted; empty windows are skipped (they are no-ops for
    /// every consumer in this workspace, which all reason in terms of window
    /// indices).
    pub fn window_slices<'a>(&self, stream: &'a LinkStream) -> WindowSlices<'a> {
        WindowSlices { partition: *self, rest: stream.events() }
    }

    /// Like [`window_slices`](Self::window_slices) but in descending window
    /// order — the iteration order of the backward dynamic program.
    pub fn window_slices_rev<'a>(&self, stream: &'a LinkStream) -> WindowSlicesRev<'a> {
        WindowSlicesRev { partition: *self, rest: stream.events() }
    }
}

/// Ascending iterator over non-empty windows; see
/// [`WindowPartition::window_slices`].
pub struct WindowSlices<'a> {
    partition: WindowPartition,
    rest: &'a [Link],
}

impl<'a> Iterator for WindowSlices<'a> {
    type Item = (u64, &'a [Link]);

    fn next(&mut self) -> Option<Self::Item> {
        let first = self.rest.first()?;
        let w = self.partition.index(first.t);
        let end = self.rest.partition_point(|l| self.partition.index(l.t) == w);
        let (head, tail) = self.rest.split_at(end);
        self.rest = tail;
        Some((w, head))
    }
}

/// Descending iterator over non-empty windows; see
/// [`WindowPartition::window_slices_rev`].
pub struct WindowSlicesRev<'a> {
    partition: WindowPartition,
    rest: &'a [Link],
}

impl<'a> Iterator for WindowSlicesRev<'a> {
    type Item = (u64, &'a [Link]);

    fn next(&mut self) -> Option<Self::Item> {
        let last = self.rest.last()?;
        let w = self.partition.index(last.t);
        let start = self.rest.partition_point(|l| self.partition.index(l.t) < w);
        let (head, tail) = self.rest.split_at(start);
        self.rest = head;
        Some((w, tail))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Directedness, LinkStreamBuilder};

    #[test]
    fn rejects_zero_k() {
        assert_eq!(
            WindowPartition::new(Time::new(0), Time::new(10), 0).unwrap_err(),
            WindowError::ZeroWindows
        );
    }

    #[test]
    fn zero_span_only_one_window() {
        assert!(WindowPartition::new(Time::new(5), Time::new(5), 1).is_ok());
        assert_eq!(
            WindowPartition::new(Time::new(5), Time::new(5), 3).unwrap_err(),
            WindowError::ZeroSpanNeedsSingleWindow { k: 3 }
        );
    }

    #[test]
    fn indices_partition_the_period_exactly() {
        // span 10, K = 3 => windows of length 10/3: [0,10/3), [10/3,20/3), [20/3,10]
        let p = WindowPartition::new(Time::new(0), Time::new(10), 3).unwrap();
        let idx: Vec<u64> = (0..=10).map(|t| p.index(Time::new(t))).collect();
        assert_eq!(idx, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn index_is_monotone_for_many_k() {
        let p0 = Time::new(-17);
        let p1 = Time::new(9_431);
        for k in [1u64, 2, 3, 7, 100, 9_448] {
            let p = WindowPartition::new(p0, p1, k).unwrap();
            let mut prev = 0;
            for t in p0.ticks()..=p1.ticks() {
                let w = p.index(Time::new(t));
                assert!(w >= prev && w < k, "k={k} t={t} w={w}");
                prev = w;
            }
            // every window receives at least... only when k <= span+1:
            if k <= (p1 - p0) as u64 {
                let last = p.index(p1);
                assert_eq!(last, k - 1);
            }
        }
    }

    #[test]
    fn k_equal_one_is_total_aggregation() {
        let p = WindowPartition::new(Time::new(3), Time::new(1000), 1).unwrap();
        assert_eq!(p.index(Time::new(3)), 0);
        assert_eq!(p.index(Time::new(700)), 0);
        assert_eq!(p.index(Time::new(1000)), 0);
    }

    fn sample_stream() -> LinkStream {
        let mut b = LinkStreamBuilder::new(Directedness::Undirected);
        b.add("a", "b", 0);
        b.add("b", "c", 1);
        b.add("a", "c", 5);
        b.add("c", "d", 9);
        b.add("a", "d", 10);
        b.build().unwrap()
    }

    #[test]
    fn window_slices_cover_all_events_in_order() {
        let s = sample_stream();
        let p = s.partition(5).unwrap(); // Δ = 2
        let got: Vec<(u64, usize)> = p.window_slices(&s).map(|(w, g)| (w, g.len())).collect();
        // windows: [0,2) -> t=0,1 ; [2,4) empty ; [4,6) -> 5 ; [6,8) empty ; [8,10] -> 9,10
        assert_eq!(got, vec![(0, 2), (2, 1), (4, 2)]);
        let total: usize = p.window_slices(&s).map(|(_, g)| g.len()).sum();
        assert_eq!(total, s.len());
    }

    #[test]
    fn rev_matches_forward_reversed() {
        let s = sample_stream();
        for k in 1..=12 {
            let p = s.partition(k).unwrap();
            let fwd: Vec<(u64, usize)> =
                p.window_slices(&s).map(|(w, g)| (w, g.len())).collect();
            let mut rev: Vec<(u64, usize)> =
                p.window_slices_rev(&s).map(|(w, g)| (w, g.len())).collect();
            rev.reverse();
            assert_eq!(fwd, rev, "k={k}");
        }
    }

    #[test]
    fn bounds_are_consistent_with_index() {
        let p = WindowPartition::new(Time::new(0), Time::new(100), 7).unwrap();
        for w in 0..7 {
            let (lo, hi) = p.window_bounds(w);
            // a tick strictly inside [lo, hi) must map to w
            let t = lo.ceil() as i64;
            if (t as f64) < hi && t <= 100 {
                assert_eq!(p.index(Time::new(t)), w, "w={w} t={t}");
            }
        }
    }
}
