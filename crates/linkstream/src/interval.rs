//! Link streams with *durations* — the paper's first stated perspective.
//!
//! The occupancy method handles punctual links only; Section 9 names the
//! extension to links lasting over an interval (phone calls, physical
//! contacts) as the main open direction, and the related work (refs 12 and 3 in
//! the paper) studies such data through *oversampling*: a sensor reads the
//! network every `p` seconds and reports each live link as a punctual event.
//!
//! This module provides the interval data model and the two standard
//! conversions to punctual streams, so duration data can be analyzed with
//! the existing machinery while a duration-native trip theory remains future
//! work (documented in DESIGN.md):
//!
//! * [`IntervalStream::sample_periodic`] — the sampling-process model of
//!   those references: one punctual event per sampling tick while a link is
//!   live;
//! * [`IntervalStream::endpoints`] — one event at each interval boundary
//!   (the minimal punctualization).

use crate::{
    BuildError, Directedness, LinkStream, LinkStreamBuilder, NodeId, NodeInterner, Time,
};
use serde::Serialize;

/// One link existing over the closed interval `[start, end]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub struct IntervalLink {
    /// First endpoint (source, if directed).
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
    /// First instant of existence.
    pub start: Time,
    /// Last instant of existence (`start <= end`).
    pub end: Time,
}

impl IntervalLink {
    /// Duration `end - start` in ticks (0 for an instantaneous contact).
    pub fn duration(&self) -> i64 {
        self.end - self.start
    }
}

/// A finite collection of interval links.
#[derive(Clone, Debug, Serialize)]
pub struct IntervalStream {
    directedness: Directedness,
    labels: Vec<String>,
    links: Vec<IntervalLink>,
    t_begin: Time,
    t_end: Time,
}

impl IntervalStream {
    /// Orientation of the links.
    pub fn directedness(&self) -> Directedness {
        self.directedness
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// The interval links, sorted by `(start, end, u, v)`.
    pub fn links(&self) -> &[IntervalLink] {
        &self.links
    }

    /// Number of interval links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the stream holds no link.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Start of the study period.
    pub fn t_begin(&self) -> Time {
        self.t_begin
    }

    /// End of the study period.
    pub fn t_end(&self) -> Time {
        self.t_end
    }

    /// Label of a node.
    pub fn label(&self, id: NodeId) -> &str {
        &self.labels[id.index()]
    }

    /// Mean link duration in ticks.
    pub fn mean_duration(&self) -> f64 {
        if self.links.is_empty() {
            return f64::NAN;
        }
        self.links.iter().map(|l| l.duration() as f64).sum::<f64>() / self.links.len() as f64
    }

    /// Oversamples into a punctual stream: the network is read at instants
    /// `t_begin + phase, t_begin + phase + period, ...` and every link live
    /// at a read instant produces one punctual event — the measurement model
    /// of distributed sensor deployments (refs 12 and 3 in the paper).
    ///
    /// # Panics
    /// Panics if `period < 1` or `phase < 0`.
    pub fn sample_periodic(&self, period: i64, phase: i64) -> Result<LinkStream, BuildError> {
        assert!(period >= 1, "sampling period must be at least one tick");
        assert!(phase >= 0, "phase must be non-negative");
        let mut b = self.punctual_builder();
        b.period(self.t_begin, self.t_end);
        for link in &self.links {
            // first sampling instant >= link.start
            let offset = link.start - (self.t_begin + phase);
            let steps = if offset <= 0 { 0 } else { (offset + period - 1) / period };
            let mut t = self.t_begin + phase + steps * period;
            while t <= link.end {
                b.add_indexed(link.u.raw(), link.v.raw(), t);
                t += period;
            }
        }
        b.build()
    }

    /// Punctualizes each interval to its two boundary instants (one instant
    /// if the duration is zero).
    pub fn endpoints(&self) -> Result<LinkStream, BuildError> {
        let mut b = self.punctual_builder();
        b.period(self.t_begin, self.t_end);
        for link in &self.links {
            b.add_indexed(link.u.raw(), link.v.raw(), link.start);
            if link.end > link.start {
                b.add_indexed(link.u.raw(), link.v.raw(), link.end);
            }
        }
        b.build()
    }

    /// Node ids of the punctual stream align with this stream's ids; labels
    /// become decimal indices (look original labels up via
    /// [`IntervalStream::label`]).
    fn punctual_builder(&self) -> LinkStreamBuilder {
        LinkStreamBuilder::indexed(self.directedness, self.labels.len() as u32)
    }
}

/// Incremental constructor for [`IntervalStream`].
pub struct IntervalStreamBuilder {
    directedness: Directedness,
    interner: NodeInterner,
    links: Vec<IntervalLink>,
    period: Option<(Time, Time)>,
    dropped: usize,
}

impl IntervalStreamBuilder {
    /// Creates a builder.
    pub fn new(directedness: Directedness) -> Self {
        IntervalStreamBuilder {
            directedness,
            interner: NodeInterner::new(),
            links: Vec::new(),
            period: None,
            dropped: 0,
        }
    }

    /// Declares the study period explicitly.
    pub fn period(&mut self, begin: impl Into<Time>, end: impl Into<Time>) -> &mut Self {
        self.period = Some((begin.into(), end.into()));
        self
    }

    /// Records a link over `[start, end]`. Self-loops and inverted intervals
    /// are dropped (counted).
    pub fn add(
        &mut self,
        u: &str,
        v: &str,
        start: impl Into<Time>,
        end: impl Into<Time>,
    ) -> &mut Self {
        let (start, end) = (start.into(), end.into());
        let u = self.interner.intern(u);
        let v = self.interner.intern(v);
        if u == v || start > end {
            self.dropped += 1;
            return self;
        }
        let (u, v) = match self.directedness {
            Directedness::Directed => (u, v),
            Directedness::Undirected => {
                if u.raw() <= v.raw() {
                    (u, v)
                } else {
                    (v, u)
                }
            }
        };
        self.links.push(IntervalLink { u, v, start, end });
        self
    }

    /// Number of records rejected so far (self-loops, inverted intervals).
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Validates and freezes the stream.
    pub fn build(self) -> Result<IntervalStream, BuildError> {
        let IntervalStreamBuilder { directedness, interner, mut links, period, .. } = self;
        if links.is_empty() {
            return Err(BuildError::Empty);
        }
        links.sort_unstable_by_key(|l| (l.start, l.end, l.u, l.v));
        links.dedup();
        let observed_begin = links.iter().map(|l| l.start).min().expect("non-empty");
        let observed_end = links.iter().map(|l| l.end).max().expect("non-empty");
        let (t_begin, t_end) = match period {
            None => (observed_begin, observed_end),
            Some((b, e)) => {
                if b > e {
                    return Err(BuildError::InvertedPeriod {
                        begin: b.ticks(),
                        end: e.ticks(),
                    });
                }
                if observed_begin < b || observed_end > e {
                    return Err(BuildError::PeriodTooShort {
                        event: if observed_begin < b {
                            observed_begin.ticks()
                        } else {
                            observed_end.ticks()
                        },
                        begin: b.ticks(),
                        end: e.ticks(),
                    });
                }
                (b, e)
            }
        };
        Ok(IntervalStream {
            directedness,
            labels: interner.into_labels(),
            links,
            t_begin,
            t_end,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IntervalStream {
        let mut b = IntervalStreamBuilder::new(Directedness::Undirected);
        b.add("a", "b", 0, 10);
        b.add("b", "c", 5, 5); // instantaneous
        b.add("c", "d", 12, 20);
        b.build().unwrap()
    }

    #[test]
    fn build_sorts_and_validates() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.t_begin(), Time::new(0));
        assert_eq!(s.t_end(), Time::new(20));
        assert!((s.mean_duration() - (10.0 + 0.0 + 8.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_intervals_and_loops_dropped() {
        let mut b = IntervalStreamBuilder::new(Directedness::Undirected);
        b.add("a", "b", 10, 5); // inverted
        b.add("a", "a", 0, 4); // loop
        b.add("a", "b", 0, 4);
        assert_eq!(b.dropped(), 2);
        let s = b.build().unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn periodic_sampling_reads_live_links() {
        let s = sample();
        // period 4, phase 0: reads at t = 0, 4, 8, 12, 16, 20
        let p = s.sample_periodic(4, 0).unwrap();
        let events: Vec<(u32, u32, i64)> =
            p.events().iter().map(|l| (l.u.raw(), l.v.raw(), l.t.ticks())).collect();
        // a-b live on [0,10]: reads 0, 4, 8; b-c on [5,5]: no read (5 not a multiple of 4)
        // c-d on [12,20]: reads 12, 16, 20
        assert_eq!(
            events,
            vec![(0, 1, 0), (0, 1, 4), (0, 1, 8), (2, 3, 12), (2, 3, 16), (2, 3, 20)]
        );
    }

    #[test]
    fn phase_shifts_the_reads() {
        let s = sample();
        let p = s.sample_periodic(4, 1).unwrap(); // reads at 1, 5, 9, 13, 17
        let ts: Vec<i64> = p.events().iter().map(|l| l.t.ticks()).collect();
        assert_eq!(ts, vec![1, 5, 5, 9, 13, 17]); // b-c captured at t=5 now
    }

    #[test]
    fn fine_sampling_approaches_continuous_presence() {
        let s = sample();
        let p = s.sample_periodic(1, 0).unwrap();
        // a-b: 11 reads; b-c: 1; c-d: 9
        assert_eq!(p.len(), 21);
    }

    #[test]
    fn endpoints_punctualization() {
        let s = sample();
        let p = s.endpoints().unwrap();
        let ts: Vec<i64> = p.events().iter().map(|l| l.t.ticks()).collect();
        assert_eq!(ts, vec![0, 5, 10, 12, 20]); // b-c contributes once (zero length)
    }

    #[test]
    fn sampling_preserves_study_period() {
        let s = sample();
        let p = s.sample_periodic(7, 0).unwrap();
        assert_eq!(p.t_begin(), Time::new(0));
        assert_eq!(p.t_end(), Time::new(20));
    }

    #[test]
    fn empty_builder_fails() {
        let b = IntervalStreamBuilder::new(Directedness::Directed);
        assert!(matches!(b.build(), Err(BuildError::Empty)));
    }
}
