//! The `(u, v, t)` triplet.

use crate::{NodeId, Time};
use serde::{Deserialize, Serialize};

/// One link event: nodes `u` and `v` interact at instant `t`.
///
/// In an undirected stream the endpoints are stored in normalized order
/// (`u <= v`); in a directed stream `u` is the source and `v` the target.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Link {
    /// First endpoint (source, if directed).
    pub u: NodeId,
    /// Second endpoint (target, if directed).
    pub v: NodeId,
    /// Instant at which the link occurs.
    pub t: Time,
}

impl Link {
    /// Creates a new link event.
    pub const fn new(u: NodeId, v: NodeId, t: Time) -> Self {
        Link { u, v, t }
    }

    /// Returns the link with endpoints swapped (same instant).
    pub const fn reversed(self) -> Self {
        Link { u: self.v, v: self.u, t: self.t }
    }

    /// Whether both endpoints are the same node.
    pub const fn is_self_loop(self) -> bool {
        self.u.0 == self.v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversed_swaps_endpoints() {
        let l = Link::new(NodeId(1), NodeId(2), Time::new(5));
        let r = l.reversed();
        assert_eq!(r.u, NodeId(2));
        assert_eq!(r.v, NodeId(1));
        assert_eq!(r.t, l.t);
    }

    #[test]
    fn self_loop_detection() {
        assert!(Link::new(NodeId(3), NodeId(3), Time::new(0)).is_self_loop());
        assert!(!Link::new(NodeId(3), NodeId(4), Time::new(0)).is_self_loop());
    }

    #[test]
    fn ordering_is_by_fields() {
        let a = Link::new(NodeId(0), NodeId(1), Time::new(1));
        let b = Link::new(NodeId(0), NodeId(2), Time::new(1));
        assert!(a < b);
    }
}
