//! Dense node identifiers and label interning.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A dense node identifier, valid within one [`LinkStream`](crate::LinkStream).
///
/// Identifiers are assigned contiguously from zero in order of first
/// appearance, so they can index flat arrays directly via [`NodeId::index`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the identifier as a `usize`, suitable for array indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Bidirectional mapping between external node labels and dense [`NodeId`]s.
///
/// ```
/// use saturn_linkstream::NodeInterner;
/// let mut interner = NodeInterner::new();
/// let a = interner.intern("alice");
/// let b = interner.intern("bob");
/// assert_ne!(a, b);
/// assert_eq!(interner.intern("alice"), a);
/// assert_eq!(interner.label(a), "alice");
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct NodeInterner {
    by_label: HashMap<String, NodeId>,
    labels: Vec<String>,
}

impl NodeInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `label`, allocating a fresh one on first sight.
    pub fn intern(&mut self, label: &str) -> NodeId {
        if let Some(&id) = self.by_label.get(label) {
            return id;
        }
        let id = NodeId(self.labels.len() as u32);
        self.labels.push(label.to_owned());
        self.by_label.insert(label.to_owned(), id);
        id
    }

    /// Looks up an already-interned label.
    pub fn get(&self, label: &str) -> Option<NodeId> {
        self.by_label.get(label).copied()
    }

    /// Returns the label of `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn label(&self, id: NodeId) -> &str {
        &self.labels[id.index()]
    }

    /// Number of interned nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no node has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Consumes the interner, returning labels indexed by [`NodeId`].
    pub fn into_labels(self) -> Vec<String> {
        self.labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = NodeInterner::new();
        let a = i.intern("x");
        assert_eq!(i.intern("x"), a);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_in_first_seen_order() {
        let mut i = NodeInterner::new();
        assert_eq!(i.intern("a").raw(), 0);
        assert_eq!(i.intern("b").raw(), 1);
        assert_eq!(i.intern("a").raw(), 0);
        assert_eq!(i.intern("c").raw(), 2);
    }

    #[test]
    fn get_does_not_allocate() {
        let mut i = NodeInterner::new();
        assert!(i.get("missing").is_none());
        let a = i.intern("a");
        assert_eq!(i.get("a"), Some(a));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn into_labels_preserves_order() {
        let mut i = NodeInterner::new();
        i.intern("u");
        i.intern("v");
        assert_eq!(i.into_labels(), vec!["u".to_string(), "v".to_string()]);
    }
}
