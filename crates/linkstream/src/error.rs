//! Error types for stream construction and parsing.

use std::fmt;

/// Errors raised when building a [`LinkStream`](crate::LinkStream).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The builder contained no usable (non-self-loop) link.
    Empty,
    /// An explicit study period was given that does not contain every event.
    PeriodTooShort {
        /// The offending event instant.
        event: i64,
        /// The declared period start.
        begin: i64,
        /// The declared period end.
        end: i64,
    },
    /// An explicit study period was given with `begin > end`.
    InvertedPeriod {
        /// The declared period start.
        begin: i64,
        /// The declared period end.
        end: i64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Empty => write!(f, "link stream contains no usable link"),
            BuildError::PeriodTooShort { event, begin, end } => write!(
                f,
                "event at t={event} lies outside the declared study period [{begin}, {end}]"
            ),
            BuildError::InvertedPeriod { begin, end } => {
                write!(f, "study period [{begin}, {end}] has begin > end")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Errors raised while parsing a textual link-stream file.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be interpreted.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The parsed data could not form a valid stream.
    Build(BuildError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseError::Build(e) => write!(f, "invalid stream: {e}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            ParseError::Build(e) => Some(e),
            ParseError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

impl From<BuildError> for ParseError {
    fn from(e: BuildError) -> Self {
        ParseError::Build(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = BuildError::PeriodTooShort { event: 12, begin: 0, end: 10 };
        assert!(e.to_string().contains("t=12"));
        let p = ParseError::Malformed { line: 3, reason: "missing timestamp".into() };
        assert!(p.to_string().contains("line 3"));
    }

    #[test]
    fn parse_error_sources_chain() {
        use std::error::Error;
        let p = ParseError::Build(BuildError::Empty);
        assert!(p.source().is_some());
        let m = ParseError::Malformed { line: 1, reason: "x".into() };
        assert!(m.source().is_none());
    }
}
