//! Link-stream substrate for saturation-scale analysis.
//!
//! A *link stream* is a finite collection of triplets `(u, v, t)` meaning that
//! nodes `u` and `v` share a link at time `t` (Léo, Crespelle, Fleury,
//! CoNEXT 2015). This crate provides the foundational data model used by the
//! rest of the workspace:
//!
//! * [`Time`] — integer-tick timestamps (discrete time; continuous time is
//!   represented by choosing a fine enough tick resolution),
//! * [`NodeId`] / [`NodeInterner`] — dense node identifiers and label mapping,
//! * [`Link`] — one `(u, v, t)` triplet,
//! * [`LinkStream`] / [`LinkStreamBuilder`] — the validated, time-sorted
//!   stream container,
//! * [`WindowPartition`] — the exact `Δ = T/K` partition of the study period
//!   into `K` equal disjoint windows (Definition 1 of the paper),
//! * [`io`] — plain-text and KONECT-style parsers and writers.
//!
//! # Quick example
//!
//! ```
//! use saturn_linkstream::{Directedness, LinkStreamBuilder};
//!
//! let mut b = LinkStreamBuilder::new(Directedness::Undirected);
//! b.add("a", "b", 0);
//! b.add("b", "c", 3);
//! b.add("c", "d", 7);
//! let stream = b.build().unwrap();
//! assert_eq!(stream.node_count(), 4);
//! assert_eq!(stream.len(), 3);
//! assert_eq!(stream.span(), 7);
//! ```

pub mod error;
pub mod event;
pub mod interval;
pub mod io;
pub mod node;
pub mod stream;
pub mod time;
pub mod windows;

pub use error::{BuildError, ParseError};
pub use event::Link;
pub use interval::{IntervalLink, IntervalStream, IntervalStreamBuilder};
pub use node::{NodeId, NodeInterner};
pub use stream::{Directedness, LinkStream, LinkStreamBuilder, StreamStats};
pub use time::Time;
pub use windows::WindowPartition;
