//! The validated, time-sorted link-stream container and its builder.

use crate::{BuildError, Link, NodeId, NodeInterner, Time, WindowPartition};
use serde::Serialize;

/// Whether links carry an orientation.
///
/// The occupancy method applies to both cases (paper, Section 2): an
/// undirected link can be traversed in either direction by a temporal path, a
/// directed link only from source to target.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum Directedness {
    /// Links are ordered pairs; temporal paths follow the arrow.
    Directed,
    /// Links are unordered pairs (stored with `u <= v`).
    Undirected,
}

impl Directedness {
    /// `true` for [`Directedness::Directed`].
    pub const fn is_directed(self) -> bool {
        matches!(self, Directedness::Directed)
    }
}

/// A finite collection of `(u, v, t)` triplets over a study period.
///
/// Invariants maintained by construction:
/// * events are sorted by `(t, u, v)` and exact duplicates are removed
///   (the stream is a *set* of triplets, as in the paper);
/// * self-loops are dropped (they can never participate in a temporal path);
/// * in an undirected stream every stored link satisfies `u <= v`;
/// * every event instant lies inside the study period
///   `[t_begin, t_end]`, whose length `T = t_end - t_begin` is the
///   denominator of every aggregation scale `Δ = T/K`.
#[derive(Clone, Debug, Serialize)]
pub struct LinkStream {
    directedness: Directedness,
    labels: Vec<String>,
    events: Vec<Link>,
    t_begin: Time,
    t_end: Time,
    dropped_self_loops: usize,
    dropped_duplicates: usize,
}

impl LinkStream {
    /// Orientation of the links.
    pub fn directedness(&self) -> Directedness {
        self.directedness
    }

    /// Shorthand for `self.directedness().is_directed()`.
    pub fn is_directed(&self) -> bool {
        self.directedness.is_directed()
    }

    /// Number of nodes `n = |V|`.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of distinct link events `|L|`.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream holds no event (never true for built streams).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, sorted by `(t, u, v)`.
    pub fn events(&self) -> &[Link] {
        &self.events
    }

    /// External label of a node.
    pub fn label(&self, id: NodeId) -> &str {
        &self.labels[id.index()]
    }

    /// All labels, indexed by [`NodeId`].
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Start of the study period.
    pub fn t_begin(&self) -> Time {
        self.t_begin
    }

    /// End of the study period (inclusive).
    pub fn t_end(&self) -> Time {
        self.t_end
    }

    /// Length `T` of the study period, in ticks.
    pub fn span(&self) -> i64 {
        self.t_end - self.t_begin
    }

    /// Number of self-loop triplets discarded at build time.
    pub fn dropped_self_loops(&self) -> usize {
        self.dropped_self_loops
    }

    /// Number of exact duplicate triplets discarded at build time.
    pub fn dropped_duplicates(&self) -> usize {
        self.dropped_duplicates
    }

    /// Builds the exact partition of the study period into `k` equal windows
    /// (aggregation scale `Δ = T/k`, Definition 1).
    pub fn partition(&self, k: u64) -> Result<WindowPartition, crate::windows::WindowError> {
        WindowPartition::new(self.t_begin, self.t_end, k)
    }

    /// Iterates over groups of events sharing the same timestamp, in
    /// ascending time order.
    pub fn timestamp_groups(&self) -> impl Iterator<Item = (Time, &[Link])> {
        self.events.chunk_by(|a, b| a.t == b.t).map(|g| (g[0].t, g))
    }

    /// Number of distinct timestamps carrying at least one event.
    pub fn distinct_timestamps(&self) -> usize {
        self.timestamp_groups().count()
    }

    /// Restricts the stream to the sub-period `[begin, end]`, keeping the
    /// events inside it and setting the study period to exactly that range.
    /// Returns `None` when the range is inverted, outside the study period,
    /// or contains no event. Node identities (and labels) are preserved, so
    /// results on the restriction compare directly with the full stream —
    /// the primitive behind per-activity-segment analysis (the paper's
    /// Section 9 perspective on temporal heterogeneity).
    pub fn restrict(&self, begin: Time, end: Time) -> Option<LinkStream> {
        if begin > end || begin < self.t_begin || end > self.t_end {
            return None;
        }
        let lo = self.events.partition_point(|l| l.t < begin);
        let hi = self.events.partition_point(|l| l.t <= end);
        if lo == hi {
            return None;
        }
        Some(LinkStream {
            directedness: self.directedness,
            labels: self.labels.clone(),
            events: self.events[lo..hi].to_vec(),
            t_begin: begin,
            t_end: end,
            dropped_self_loops: 0,
            dropped_duplicates: 0,
        })
    }

    /// Summary statistics of the stream.
    pub fn stats(&self) -> StreamStats {
        let n = self.node_count().max(1);
        let m = self.len();
        let involvements = 2.0 * m as f64 / n as f64;
        let span = self.span();
        StreamStats {
            nodes: self.node_count(),
            links: m,
            distinct_timestamps: self.distinct_timestamps(),
            t_begin: self.t_begin,
            t_end: self.t_end,
            span,
            mean_links_per_node: involvements,
            mean_inter_contact: if involvements > 0.0 {
                span as f64 / involvements
            } else {
                f64::INFINITY
            },
            dropped_self_loops: self.dropped_self_loops,
            dropped_duplicates: self.dropped_duplicates,
        }
    }
}

/// Summary statistics of a [`LinkStream`], as produced by
/// [`LinkStream::stats`].
#[derive(Clone, Copy, Debug, Serialize)]
pub struct StreamStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of distinct link events.
    pub links: usize,
    /// Number of distinct event timestamps.
    pub distinct_timestamps: usize,
    /// Start of the study period.
    pub t_begin: Time,
    /// End of the study period.
    pub t_end: Time,
    /// `t_end - t_begin`, in ticks.
    pub span: i64,
    /// Average number of link involvements per node (each link counts for
    /// both endpoints), i.e. `2m/n`.
    pub mean_links_per_node: f64,
    /// Mean inter-contact time of a node, `T / (2m/n)` ticks — the x-axis of
    /// Figure 6 (left) in the paper.
    pub mean_inter_contact: f64,
    /// Self-loop triplets discarded at build time.
    pub dropped_self_loops: usize,
    /// Exact duplicate triplets discarded at build time.
    pub dropped_duplicates: usize,
}

#[derive(Clone)]
enum NodeMode {
    /// Nodes are interned from string labels.
    Labeled(NodeInterner),
    /// Nodes are raw indices `0..n`; labels are the decimal indices.
    Indexed(u32),
}

/// Incremental constructor for [`LinkStream`].
///
/// Two node-identification styles are supported and must not be mixed:
/// string labels via [`add`](LinkStreamBuilder::add) (ids assigned in order of
/// first appearance) or raw dense indices via
/// [`add_indexed`](LinkStreamBuilder::add_indexed) on a builder created with
/// [`indexed`](LinkStreamBuilder::indexed).
///
/// The builder is [`Clone`] so long-lived ingest sessions can keep
/// accepting events while frozen [`snapshot`](LinkStreamBuilder::snapshot)s
/// of the stream-so-far are analyzed.
#[derive(Clone)]
pub struct LinkStreamBuilder {
    directedness: Directedness,
    mode: NodeMode,
    raw: Vec<Link>,
    period: Option<(Time, Time)>,
    self_loops: usize,
}

impl LinkStreamBuilder {
    /// Creates a label-mode builder.
    pub fn new(directedness: Directedness) -> Self {
        LinkStreamBuilder {
            directedness,
            mode: NodeMode::Labeled(NodeInterner::new()),
            raw: Vec::new(),
            period: None,
            self_loops: 0,
        }
    }

    /// Creates an index-mode builder over exactly `n_nodes` nodes
    /// (ids `0..n_nodes`); nodes without any link remain in the node set.
    pub fn indexed(directedness: Directedness, n_nodes: u32) -> Self {
        LinkStreamBuilder {
            directedness,
            mode: NodeMode::Indexed(n_nodes),
            raw: Vec::new(),
            period: None,
            self_loops: 0,
        }
    }

    /// Declares the study period `[begin, end]` explicitly. When omitted, the
    /// observed `[min t, max t]` is used.
    pub fn period(&mut self, begin: impl Into<Time>, end: impl Into<Time>) -> &mut Self {
        self.period = Some((begin.into(), end.into()));
        self
    }

    /// Records a triplet identified by string labels.
    ///
    /// # Panics
    /// Panics if the builder was created with
    /// [`indexed`](LinkStreamBuilder::indexed).
    pub fn add(&mut self, u: &str, v: &str, t: impl Into<Time>) -> &mut Self {
        let NodeMode::Labeled(interner) = &mut self.mode else {
            panic!("LinkStreamBuilder::add called on an index-mode builder");
        };
        let u = interner.intern(u);
        let v = interner.intern(v);
        self.push(u, v, t.into());
        self
    }

    /// Records a triplet identified by raw node indices.
    ///
    /// # Panics
    /// Panics if the builder is label-mode, or if an index is out of range.
    pub fn add_indexed(&mut self, u: u32, v: u32, t: impl Into<Time>) -> &mut Self {
        let NodeMode::Indexed(n) = self.mode else {
            panic!("LinkStreamBuilder::add_indexed called on a label-mode builder");
        };
        assert!(u < n && v < n, "node index out of range: ({u}, {v}) with n = {n}");
        self.push(NodeId(u), NodeId(v), t.into());
        self
    }

    fn push(&mut self, u: NodeId, v: NodeId, t: Time) {
        if u == v {
            self.self_loops += 1;
            return;
        }
        let (u, v) = match self.directedness {
            Directedness::Directed => (u, v),
            Directedness::Undirected => {
                if u.raw() <= v.raw() {
                    (u, v)
                } else {
                    (v, u)
                }
            }
        };
        self.raw.push(Link::new(u, v, t));
    }

    /// Number of triplets recorded so far (self-loops excluded).
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether no triplet has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Freezes the stream-so-far without consuming the builder: the
    /// append-session primitive. Equivalent to cloning and
    /// [`build`](LinkStreamBuilder::build)ing — a snapshot after `n`
    /// appends is byte-identical to a one-shot build of the same `n`
    /// events, so incremental and scratch analyses share cache keys.
    pub fn snapshot(&self) -> Result<LinkStream, BuildError> {
        self.clone().build()
    }

    /// Validates, sorts, deduplicates and freezes the stream.
    pub fn build(self) -> Result<LinkStream, BuildError> {
        let LinkStreamBuilder { directedness, mode, mut raw, period, self_loops } = self;
        if raw.is_empty() {
            return Err(BuildError::Empty);
        }
        raw.sort_unstable_by_key(|l| (l.t, l.u, l.v));
        let before = raw.len();
        raw.dedup();
        let dropped_duplicates = before - raw.len();

        let observed_begin = raw.first().expect("non-empty").t;
        let observed_end = raw.last().expect("non-empty").t;
        let (t_begin, t_end) = match period {
            None => (observed_begin, observed_end),
            Some((b, e)) => {
                if b > e {
                    return Err(BuildError::InvertedPeriod {
                        begin: b.ticks(),
                        end: e.ticks(),
                    });
                }
                if observed_begin < b || observed_end > e {
                    let event = if observed_begin < b { observed_begin } else { observed_end };
                    return Err(BuildError::PeriodTooShort {
                        event: event.ticks(),
                        begin: b.ticks(),
                        end: e.ticks(),
                    });
                }
                (b, e)
            }
        };

        let labels = match mode {
            NodeMode::Labeled(interner) => interner.into_labels(),
            NodeMode::Indexed(n) => (0..n).map(|i| i.to_string()).collect(),
        };

        Ok(LinkStream {
            directedness,
            labels,
            events: raw,
            t_begin,
            t_end,
            dropped_self_loops: self_loops,
            dropped_duplicates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LinkStream {
        let mut b = LinkStreamBuilder::new(Directedness::Undirected);
        b.add("b", "a", 5); // will be normalized and re-sorted
        b.add("a", "b", 5); // duplicate after normalization
        b.add("a", "c", 2);
        b.add("c", "c", 3); // self-loop, dropped
        b.build().unwrap()
    }

    #[test]
    fn build_sorts_normalizes_and_dedups() {
        let s = sample();
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped_duplicates(), 1);
        assert_eq!(s.dropped_self_loops(), 1);
        let ts: Vec<i64> = s.events().iter().map(|l| l.t.ticks()).collect();
        assert_eq!(ts, vec![2, 5]);
        // undirected normalization: u <= v everywhere
        assert!(s.events().iter().all(|l| l.u.raw() <= l.v.raw()));
    }

    #[test]
    fn observed_period_is_default() {
        let s = sample();
        assert_eq!(s.t_begin(), Time::new(2));
        assert_eq!(s.t_end(), Time::new(5));
        assert_eq!(s.span(), 3);
    }

    #[test]
    fn explicit_period_is_validated() {
        let mut b = LinkStreamBuilder::new(Directedness::Directed);
        b.add("a", "b", 5);
        b.period(0, 3);
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::PeriodTooShort { event: 5, begin: 0, end: 3 }
        );

        let mut b = LinkStreamBuilder::new(Directedness::Directed);
        b.add("a", "b", 5);
        b.period(9, 3);
        assert_eq!(b.build().unwrap_err(), BuildError::InvertedPeriod { begin: 9, end: 3 });

        let mut b = LinkStreamBuilder::new(Directedness::Directed);
        b.add("a", "b", 5);
        b.period(0, 10);
        let s = b.build().unwrap();
        assert_eq!(s.span(), 10);
    }

    #[test]
    fn snapshot_equals_one_shot_build_and_keeps_accepting() {
        let mut b = LinkStreamBuilder::new(Directedness::Undirected);
        b.period(0, 20);
        b.add("a", "b", 1);
        b.add("b", "c", 5);
        let first = b.snapshot().unwrap();

        let mut oneshot = LinkStreamBuilder::new(Directedness::Undirected);
        oneshot.period(0, 20);
        oneshot.add("a", "b", 1);
        oneshot.add("b", "c", 5);
        let scratch = oneshot.build().unwrap();
        assert_eq!(first.events(), scratch.events());
        assert_eq!(first.labels(), scratch.labels());
        assert_eq!((first.t_begin(), first.t_end()), (scratch.t_begin(), scratch.t_end()));

        // the builder survives the snapshot and keeps interning: new labels
        // get ids after the existing ones, so earlier events keep their ids
        b.add("c", "d", 9);
        let second = b.snapshot().unwrap();
        assert_eq!(second.len(), 3);
        assert_eq!(second.labels()[..3], first.labels()[..]);
        assert_eq!(second.events()[..2], first.events()[..]);
    }

    #[test]
    fn empty_build_fails() {
        let b = LinkStreamBuilder::new(Directedness::Directed);
        assert_eq!(b.build().unwrap_err(), BuildError::Empty);

        // a stream of only self-loops is also empty
        let mut b = LinkStreamBuilder::new(Directedness::Directed);
        b.add("a", "a", 1);
        assert_eq!(b.build().unwrap_err(), BuildError::Empty);
    }

    #[test]
    fn directed_keeps_orientation_and_distinguishes_reverse() {
        let mut b = LinkStreamBuilder::new(Directedness::Directed);
        b.add("a", "b", 1);
        b.add("b", "a", 1);
        let s = b.build().unwrap();
        assert_eq!(s.len(), 2); // (a,b) and (b,a) are different directed links
    }

    #[test]
    fn undirected_merges_reverse_duplicates() {
        let mut b = LinkStreamBuilder::new(Directedness::Undirected);
        b.add("a", "b", 1);
        b.add("b", "a", 1);
        let s = b.build().unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn indexed_mode_keeps_isolated_nodes() {
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 10);
        b.add_indexed(0, 1, 0);
        b.add_indexed(1, 2, 4);
        let s = b.build().unwrap();
        assert_eq!(s.node_count(), 10);
        assert_eq!(s.label(NodeId(7)), "7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn indexed_mode_checks_bounds() {
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 2);
        b.add_indexed(0, 2, 0);
    }

    #[test]
    #[should_panic(expected = "index-mode builder")]
    fn mixing_modes_panics() {
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 2);
        b.add("a", "b", 0);
    }

    #[test]
    fn timestamp_groups_cover_all_events() {
        let mut b = LinkStreamBuilder::new(Directedness::Directed);
        b.add("a", "b", 1);
        b.add("b", "c", 1);
        b.add("c", "d", 4);
        let s = b.build().unwrap();
        let groups: Vec<(i64, usize)> =
            s.timestamp_groups().map(|(t, g)| (t.ticks(), g.len())).collect();
        assert_eq!(groups, vec![(1, 2), (4, 1)]);
        assert_eq!(s.distinct_timestamps(), 2);
    }

    #[test]
    fn stats_report_inter_contact_time() {
        // 2 nodes, 4 links over span 100 => 4 involvements per node
        // => inter-contact = 100 / 4 = 25
        let mut b = LinkStreamBuilder::new(Directedness::Undirected);
        for t in [0, 30, 60, 100] {
            b.add("a", "b", t);
        }
        let s = b.build().unwrap();
        let st = s.stats();
        assert_eq!(st.links, 4);
        assert!((st.mean_inter_contact - 25.0).abs() < 1e-12);
    }

    #[test]
    fn restrict_keeps_nodes_and_sets_period() {
        let mut b = LinkStreamBuilder::new(Directedness::Undirected);
        b.add("a", "b", 0);
        b.add("b", "c", 10);
        b.add("c", "d", 20);
        b.add("d", "e", 30);
        let s = b.build().unwrap();

        let r = s.restrict(Time::new(8), Time::new(22)).unwrap();
        assert_eq!(r.len(), 2); // t = 10, 20
        assert_eq!(r.t_begin(), Time::new(8));
        assert_eq!(r.t_end(), Time::new(22));
        assert_eq!(r.node_count(), s.node_count()); // identities preserved
        assert_eq!(r.label(NodeId(4)), "e");

        // inverted, out-of-period and empty ranges
        assert!(s.restrict(Time::new(22), Time::new(8)).is_none());
        assert!(s.restrict(Time::new(-5), Time::new(10)).is_none());
        assert!(s.restrict(Time::new(11), Time::new(19)).is_none());
    }

    #[test]
    fn single_instant_stream_has_zero_span() {
        let mut b = LinkStreamBuilder::new(Directedness::Undirected);
        b.add("a", "b", 7);
        b.add("b", "c", 7);
        let s = b.build().unwrap();
        assert_eq!(s.span(), 0);
        assert_eq!(s.distinct_timestamps(), 1);
    }
}
