//! Property-based validation of the stream substrate: builder invariants,
//! I/O round-trips, window partitions, interval punctualization.

use proptest::prelude::*;
use saturn_linkstream::{
    io, Directedness, IntervalStreamBuilder, LinkStreamBuilder, Time, WindowPartition,
};

fn arb_events() -> impl Strategy<Value = Vec<(u32, u32, i64)>> {
    proptest::collection::vec((0u32..12, 0u32..12, -500i64..500), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Built streams are sorted, deduplicated, normalized, and loop-free.
    #[test]
    fn builder_invariants(events in arb_events(), directed in any::<bool>()) {
        let d = if directed { Directedness::Directed } else { Directedness::Undirected };
        let mut b = LinkStreamBuilder::indexed(d, 12);
        let mut usable = 0;
        for &(u, v, t) in &events {
            if u != v {
                usable += 1;
            }
            b.add_indexed(u, v, t);
        }
        prop_assume!(usable > 0);
        let s = b.build().unwrap();
        // sorted by (t, u, v), strictly (dedup)
        prop_assert!(s
            .events()
            .windows(2)
            .all(|w| (w[0].t, w[0].u, w[0].v) < (w[1].t, w[1].u, w[1].v)));
        prop_assert!(s.events().iter().all(|l| l.u != l.v));
        if !directed {
            prop_assert!(s.events().iter().all(|l| l.u.raw() <= l.v.raw()));
        }
        // period covers every event
        prop_assert!(s.events().iter().all(|l| l.t >= s.t_begin() && l.t <= s.t_end()));
        // conservation: usable events = kept + duplicate-drops
        prop_assert_eq!(usable, s.len() + s.dropped_duplicates());
    }

    /// Text serialization round-trips exactly.
    #[test]
    fn io_round_trip(events in arb_events(), directed in any::<bool>()) {
        let d = if directed { Directedness::Directed } else { Directedness::Undirected };
        let mut b = LinkStreamBuilder::new(d);
        let mut any_usable = false;
        for &(u, v, t) in &events {
            if u != v {
                any_usable = true;
            }
            b.add(&format!("n{u}"), &format!("n{v}"), t);
        }
        prop_assume!(any_usable);
        let s = b.build().unwrap();
        let text = io::to_string(&s);
        let s2 = io::read_str(&text, d).unwrap();
        prop_assert_eq!(s.len(), s2.len());
        // labels may be re-interned in a different order (which flips the
        // stored orientation of undirected links), so compare label pairs,
        // unordered when undirected
        let canon = |s: &saturn_linkstream::LinkStream| {
            let mut v: Vec<(String, String, i64)> = s
                .events()
                .iter()
                .map(|l| {
                    let (a, b) = (s.label(l.u).to_string(), s.label(l.v).to_string());
                    let (a, b) = if directed || a <= b { (a, b) } else { (b, a) };
                    (a, b, l.t.ticks())
                })
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(canon(&s), canon(&s2));
    }

    /// Window index is monotone, within range, and consistent with bounds.
    #[test]
    fn window_index_properties(
        begin in -1000i64..1000,
        span in 1i64..5000,
        k in 1u64..300,
        probe in 0.0f64..=1.0,
    ) {
        let t0 = Time::new(begin);
        let t1 = Time::new(begin + span);
        let p = WindowPartition::new(t0, t1, k).unwrap();
        let t = Time::new(begin + (span as f64 * probe) as i64);
        let w = p.index(t);
        prop_assert!(w < k);
        // bounds agreement
        let (lo, hi) = p.window_bounds(w);
        let tf = t.ticks() as f64;
        prop_assert!(tf >= lo - 1e-9);
        prop_assert!(tf < hi + 1e-9 || w == k - 1);
        // monotonicity at the next tick
        if t < t1 {
            prop_assert!(p.index(t + 1) >= w);
        }
    }

    /// Periodic sampling of interval links: every sampled event lies inside
    /// its source interval, and finer periods never lose events.
    #[test]
    fn interval_sampling_properties(
        intervals in proptest::collection::vec((0u32..6, 0u32..6, 0i64..300, 0i64..100), 1..20),
        period in 1i64..40,
    ) {
        let mut b = IntervalStreamBuilder::new(Directedness::Undirected);
        b.period(0, 500);
        let mut usable = false;
        for &(u, v, start, len) in &intervals {
            if u != v {
                usable = true;
            }
            b.add(&format!("n{u}"), &format!("n{v}"), start, (start + len).min(500));
        }
        prop_assume!(usable);
        let s = b.build().unwrap();

        // a sampling grid can miss every interval entirely (zero-length
        // contacts between read instants): an Empty build is valid there
        let Ok(fine) = s.sample_periodic(period, 0) else { continue };
        // every sampled instant is covered by some interval of the pair
        for l in fine.events() {
            let covered = s.links().iter().any(|il| {
                il.u.raw() == l.u.raw()
                    && il.v.raw() == l.v.raw()
                    && il.start <= l.t
                    && l.t <= il.end
            });
            prop_assert!(covered, "sampled event outside every interval");
        }
        // doubling the period reads a subset of the instants, so it can
        // only lose events
        let coarse_len = s.sample_periodic(period * 2, 0).map(|c| c.len()).unwrap_or(0);
        prop_assert!(fine.len() >= coarse_len);
    }
}
