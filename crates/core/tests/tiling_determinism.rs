//! Tiling, delta propagation, and incremental timeline construction must
//! be invisible: an [`OccupancyMethod`] run split into target tiles of any
//! width, on any thread count, with the DP engine's delta propagation on
//! or off, with timelines merge-derived or scratch-built, must serialize
//! to the *same bytes* as the untiled single-threaded run — the property
//! that keeps the analysis service's content-addressed cache correct while
//! the executor re-tiles work per hardware (and while ablation scripts
//! flip `?no_delta=` / `?no_incremental=`). Tile widths 1, 3, `ncols`, and
//! a proptest-chosen random width are exercised across 1/2/4/8 threads ×
//! delta on/off, with refinement rounds on (the narrow rounds are where
//! auto-tiling matters most); the incremental axis runs on explicit
//! divisor ladders, where every scale actually takes the merge path.

use proptest::prelude::*;
use saturn_core::parallel::WorkerPool;
use saturn_core::{KeepPolicy, OccupancyMethod, SweepControl, SweepGrid, TargetSpec};
use saturn_linkstream::{Directedness, LinkStream, LinkStreamBuilder};

/// A small random-ish stream driven by proptest-chosen parameters.
fn build_stream(n: u32, events: usize, gap: i64, twist: u32) -> LinkStream {
    let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, n);
    for i in 0..events {
        let u = (i as u32).wrapping_mul(twist | 1) % n;
        let v = (u + 1 + (i as u32 % (n - 1))) % n;
        if u != v {
            b.add_indexed(u, v, i as i64 * gap + (i as i64 % 5));
        }
    }
    b.build().expect("non-empty stream")
}

fn method(threads: usize, tile: usize, no_delta: bool) -> OccupancyMethod {
    OccupancyMethod::new()
        .grid(SweepGrid::Geometric { points: 8 })
        .threads(threads)
        .refine(1, 4)
        .keep(KeepPolicy::ScoresOnly)
        .tile(tile)
        .no_delta_propagation(no_delta)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance matrix: tile ∈ {1, 3, ncols, random} × threads ∈
    /// {1, 2, 4, 8} × delta {on, off}, every cell byte-identical to the
    /// untiled single-threaded delta-on reference.
    #[test]
    fn reports_are_bit_identical_across_threads_tiles_and_delta(
        n in 5u32..10,
        events in 40usize..90,
        gap in 3i64..9,
        twist in 1u32..64,
        random_tile in 1usize..16,
    ) {
        let stream = build_stream(n, events, gap, twist);
        let ncols = n as usize;
        let reference = method(1, ncols, false).run(&stream).to_json();
        for &tile in &[1usize, 3, ncols, random_tile] {
            for &threads in &[1usize, 2, 4, 8] {
                for &no_delta in &[false, true] {
                    let report = method(threads, tile, no_delta).run(&stream).to_json();
                    prop_assert_eq!(
                        &report,
                        &reference,
                        "tile={} threads={} no_delta={} diverged",
                        tile,
                        threads,
                        no_delta
                    );
                }
            }
        }
    }

    /// Same property under sampled destinations (tile ranges then cover a
    /// strict subset of nodes, exercising the col_start offset mapping).
    #[test]
    fn sampled_targets_tile_identically(
        n in 6u32..12,
        events in 40usize..80,
        sample in 2u32..5,
        tile in 1usize..6,
    ) {
        let stream = build_stream(n, events, 5, 7);
        let mk = |threads: usize, t: usize, no_delta: bool| {
            OccupancyMethod::new()
                .grid(SweepGrid::Geometric { points: 6 })
                .targets(TargetSpec::Sample { size: sample, seed: 3 })
                .threads(threads)
                .refine(1, 3)
                .tile(t)
                .no_delta_propagation(no_delta)
                .run(&stream)
                .to_json()
        };
        let reference = mk(1, usize::MAX, true);
        prop_assert_eq!(mk(4, tile, false), reference.clone());
        prop_assert_eq!(mk(2, 1, false), reference.clone());
        prop_assert_eq!(mk(2, tile, true), reference);
    }

    /// The cancellation axis of the knob matrix: running under a
    /// [`SweepControl`] whose token never fires must serialize to the same
    /// bytes as the plain no-token run, across thread counts and tile
    /// widths — cancellation plumbing is an execution knob like tiling and
    /// must never reach report bytes or cache fingerprints.
    #[test]
    fn unfired_cancel_token_is_byte_identical(
        n in 5u32..10,
        events in 40usize..90,
        gap in 3i64..9,
        twist in 1u32..64,
        tile in 1usize..8,
    ) {
        let stream = build_stream(n, events, gap, twist);
        let reference = method(1, n as usize, false).run(&stream).to_json();
        for &threads in &[1usize, 4] {
            let ctl = SweepControl::new();
            let mut pool = WorkerPool::new(threads);
            let report = method(threads, tile, false)
                .try_run_on(&stream, &mut pool, &ctl)
                .expect("token never fires")
                .to_json();
            prop_assert_eq!(
                &report,
                &reference,
                "threads={} tile={}: an unfired token changed the report",
                threads,
                tile
            );
            let (done, total) = ctl.progress.snapshot();
            prop_assert_eq!(done, total);
        }
    }

    /// The incremental-timeline axis on a random divisor ladder (every
    /// scale merge-derived from its neighbor): byte-identical to the
    /// scratch-build run across threads × tiles × delta, shared timelines
    /// and all.
    #[test]
    fn incremental_timelines_are_byte_identical_on_divisor_ladders(
        n in 5u32..10,
        events in 40usize..90,
        gap in 3i64..9,
        twist in 1u32..64,
        base in 1u64..5,
        tile in 1usize..8,
    ) {
        let stream = build_stream(n, events, gap, twist);
        let ladder: Vec<u64> =
            [base * 240, base * 120, base * 24, base * 8, base * 2, base]
                .into();
        let mk = |threads: usize, t: usize, no_delta: bool, no_inc: bool| {
            OccupancyMethod::new()
                .grid(SweepGrid::ExplicitK(ladder.clone()))
                .threads(threads)
                .refine(1, 3)
                .tile(t)
                .no_delta_propagation(no_delta)
                .no_incremental_timeline(no_inc)
                .run(&stream)
                .to_json()
        };
        let reference = mk(1, usize::MAX, false, true); // scratch builds
        for &threads in &[1usize, 4] {
            for &no_delta in &[false, true] {
                prop_assert_eq!(
                    mk(threads, tile, no_delta, false),
                    reference.clone(),
                    "threads={} tile={} no_delta={} diverged from scratch",
                    threads,
                    tile,
                    no_delta
                );
            }
        }
    }
}

/// The auto tile width (tile = 0) must also be invisible, including on
/// pools wider than the scale count — the configuration the feature exists
/// for.
#[test]
fn auto_tiling_is_bit_identical_on_wide_pools() {
    let stream = build_stream(20, 160, 4, 11);
    let reference = OccupancyMethod::new()
        .grid(SweepGrid::ExplicitK(vec![1, 17, 170]))
        .threads(1)
        .refine(0, 0)
        .tile(usize::MAX)
        .run(&stream)
        .to_json();
    for threads in [2usize, 8] {
        let auto = OccupancyMethod::new()
            .grid(SweepGrid::ExplicitK(vec![1, 17, 170]))
            .threads(threads)
            .refine(0, 0)
            .tile(0)
            .run(&stream)
            .to_json();
        assert_eq!(auto, reference, "threads={threads}");
    }
}
