//! Bit-identical results across worker-pool sizes, exercising the full
//! refinement path: the coarse sweep plus several refinement rounds all run
//! on one persistent pool with per-worker arenas, and nothing about thread
//! count, work-stealing order, or arena reuse may leak into the scores.

use saturn_core::{KeepPolicy, OccupancyMethod, SweepGrid, TargetSpec};
use saturn_linkstream::{Directedness, LinkStream, LinkStreamBuilder};

fn bursty_stream(n: u32, reps: usize, gap: i64) -> LinkStream {
    let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, n);
    for r in 0..reps {
        let base = r as i64 * gap * (n as i64);
        for i in 0..n {
            b.add_indexed(i, (i + 1) % n, base + i as i64 * gap);
            if i % 3 == 0 {
                b.add_indexed(i, (i + 2) % n, base + i as i64 * gap + 1);
            }
        }
    }
    b.build().unwrap()
}

/// Runs the method with `threads` workers, refinement on.
fn run(stream: &LinkStream, threads: usize) -> saturn_core::OccupancyReport {
    OccupancyMethod::new()
        .grid(SweepGrid::Geometric { points: 14 })
        .threads(threads)
        .refine(3, 6)
        .keep(KeepPolicy::ScoresOnly)
        .run(stream)
}

#[test]
fn refinement_is_bit_identical_across_thread_counts() {
    let stream = bursty_stream(9, 12, 7);
    let reference = run(&stream, 1);
    assert!(reference.gamma().is_some(), "non-degenerate stream must yield γ");
    // refinement must actually have added scales beyond the coarse grid
    assert!(
        reference.results().len() > 14,
        "refinement path not exercised: {} scales",
        reference.results().len()
    );

    for threads in [2usize, 3, 8] {
        let other = run(&stream, threads);
        assert_eq!(reference.results().len(), other.results().len(), "threads={threads}");
        for (a, b) in reference.results().iter().zip(other.results()) {
            assert_eq!(a.k, b.k, "threads={threads}");
            assert_eq!(a.trips, b.trips, "threads={threads} k={}", a.k);
            assert_eq!(a.distinct_rates, b.distinct_rates, "threads={threads} k={}", a.k);
            // every score must match to the bit, not within epsilon
            assert_eq!(
                a.scores.mk_proximity.to_bits(),
                b.scores.mk_proximity.to_bits(),
                "threads={threads} k={}",
                a.k
            );
            assert_eq!(
                a.scores.std_dev.to_bits(),
                b.scores.std_dev.to_bits(),
                "threads={threads} k={}",
                a.k
            );
            assert_eq!(
                a.scores.cre.to_bits(),
                b.scores.cre.to_bits(),
                "threads={threads} k={}",
                a.k
            );
            assert_eq!(
                a.mean_rate.to_bits(),
                b.mean_rate.to_bits(),
                "threads={threads} k={}",
                a.k
            );
        }
        let (ga, gb) = (reference.gamma().unwrap(), other.gamma().unwrap());
        assert_eq!(ga.k, gb.k, "threads={threads}");
        assert_eq!(ga.score.to_bits(), gb.score.to_bits(), "threads={threads}");
    }
}

#[test]
fn sampled_targets_are_deterministic_across_threads_too() {
    let stream = bursty_stream(12, 8, 5);
    let mk = |threads: usize| {
        OccupancyMethod::new()
            .grid(SweepGrid::Geometric { points: 10 })
            .targets(TargetSpec::Sample { size: 5, seed: 11 })
            .threads(threads)
            .refine(2, 4)
            .run(&stream)
    };
    let a = mk(1);
    let b = mk(4);
    assert_eq!(a.results().len(), b.results().len());
    for (x, y) in a.results().iter().zip(b.results()) {
        assert_eq!(x.k, y.k);
        assert_eq!(x.trips, y.trips);
        assert_eq!(x.scores.mk_proximity.to_bits(), y.scores.mk_proximity.to_bits());
    }
}
