//! Heterogeneity-aware saturation analysis — the paper's second Section 9
//! perspective.
//!
//! "One could enhance the method so that it is able to separate the high
//! activity periods from the lower activity periods and to determine an
//! appropriate aggregation scale for each of these parts independently.
//! Then one could decide either to aggregate the whole link stream at the
//! shortest aggregation scale detected [...] or to partition the period of
//! study and aggregate each part with a different length of window."
//!
//! This module implements exactly that pipeline:
//!
//! 1. profile the activity over fixed-resolution bins,
//! 2. classify bins high/low with 1-D two-means (Lloyd's algorithm),
//! 3. merge adjacent same-class bins into segments,
//! 4. run the occupancy method on each segment independently,
//! 5. report both recommendations (global-min γ, or per-segment plan).

use crate::{OccupancyMethod, SweepGrid};
use saturn_linkstream::{LinkStream, Time};
use serde::Serialize;

/// Activity class of a segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum ActivityClass {
    /// Above the two-means midpoint.
    High,
    /// Below the two-means midpoint.
    Low,
}

/// One maximal run of same-class activity.
#[derive(Clone, Debug, Serialize)]
pub struct ActivitySegment {
    /// Segment start (inclusive), ticks.
    pub start: i64,
    /// Segment end (inclusive), ticks.
    pub end: i64,
    /// Events inside the segment.
    pub events: usize,
    /// Mean activity in events per tick.
    pub rate: f64,
    /// High or low activity.
    pub class: ActivityClass,
    /// Saturation scale of the segment alone (ticks), when the segment held
    /// enough events for the method to run.
    pub gamma_ticks: Option<f64>,
}

/// Result of a heterogeneity-aware analysis.
#[derive(Clone, Debug, Serialize)]
pub struct HeterogeneityReport {
    /// The segments, in time order.
    pub segments: Vec<ActivitySegment>,
    /// γ of the whole stream, for comparison.
    pub whole_stream_gamma_ticks: f64,
    /// The conservative recommendation: the smallest per-segment γ
    /// ("aggregate the whole link stream at the shortest aggregation scale
    /// detected, which is the one that better preserves the information").
    pub min_segment_gamma_ticks: Option<f64>,
}

/// Configuration of the segmentation.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct HeterogeneityConfig {
    /// Number of profiling bins over the study period (resolution of the
    /// segmentation).
    pub bins: usize,
    /// Grid density for the per-segment occupancy sweeps.
    pub grid_points: usize,
    /// Minimum events for a segment to be analyzed on its own.
    pub min_segment_events: usize,
    /// Worker threads (0 = all cores).
    pub threads: usize,
}

impl Default for HeterogeneityConfig {
    fn default() -> Self {
        HeterogeneityConfig { bins: 64, grid_points: 24, min_segment_events: 50, threads: 0 }
    }
}

/// 1-D two-means classification; returns per-value class and the final
/// centers `(low, high)`. Deterministic: seeds at min/max.
fn two_means(values: &[f64]) -> (Vec<ActivityClass>, (f64, f64)) {
    let lo0 = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi0 = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let (mut lo, mut hi) = (lo0, hi0);
    let mut classes = vec![ActivityClass::Low; values.len()];
    for _ in 0..64 {
        let mid = (lo + hi) / 2.0;
        for (c, &v) in classes.iter_mut().zip(values) {
            *c = if v > mid { ActivityClass::High } else { ActivityClass::Low };
        }
        let (mut sl, mut nl, mut sh, mut nh) = (0.0, 0usize, 0.0, 0usize);
        for (c, &v) in classes.iter().zip(values) {
            match c {
                ActivityClass::Low => {
                    sl += v;
                    nl += 1;
                }
                ActivityClass::High => {
                    sh += v;
                    nh += 1;
                }
            }
        }
        let new_lo = if nl > 0 { sl / nl as f64 } else { lo };
        let new_hi = if nh > 0 { sh / nh as f64 } else { hi };
        if (new_lo - lo).abs() < 1e-12 && (new_hi - hi).abs() < 1e-12 {
            break;
        }
        lo = new_lo;
        hi = new_hi;
    }
    (classes, (lo, hi))
}

/// Profiles activity and segments the study period into maximal high/low
/// runs. Degenerate (uniform) streams come back as a single segment.
pub fn segment_activity(stream: &LinkStream, bins: usize) -> Vec<ActivitySegment> {
    assert!(bins >= 1, "need at least one bin");
    let span = stream.span();
    if span == 0 {
        return vec![ActivitySegment {
            start: stream.t_begin().ticks(),
            end: stream.t_end().ticks(),
            events: stream.len(),
            rate: stream.len() as f64,
            class: ActivityClass::High,
            gamma_ticks: None,
        }];
    }
    let bins = bins.min(span as usize).max(1);
    let partition =
        saturn_linkstream::WindowPartition::new(stream.t_begin(), stream.t_end(), bins as u64)
            .expect("bins validated");
    let mut counts = vec![0usize; bins];
    for (w, links) in partition.window_slices(stream) {
        counts[w as usize] = links.len();
    }
    let rates: Vec<f64> =
        counts.iter().map(|&c| c as f64 / (span as f64 / bins as f64)).collect();
    let (classes, _) = two_means(&rates);

    // merge adjacent same-class bins
    let mut segments: Vec<ActivitySegment> = Vec::new();
    for (i, (&count, &class)) in counts.iter().zip(&classes).enumerate() {
        let (lo, hi) = partition.window_bounds(i as u64);
        let start = lo.ceil() as i64;
        let end = (hi.floor() as i64).min(stream.t_end().ticks());
        match segments.last_mut() {
            Some(last) if last.class == class => {
                last.end = end;
                last.events += count;
            }
            _ => segments.push(ActivitySegment {
                start,
                end,
                events: count,
                rate: 0.0,
                class,
                gamma_ticks: None,
            }),
        }
    }
    for s in &mut segments {
        let len = (s.end - s.start).max(1) as f64;
        s.rate = s.events as f64 / len;
    }
    segments
}

/// Runs the full heterogeneity-aware pipeline.
pub fn heterogeneous_analysis(
    stream: &LinkStream,
    config: HeterogeneityConfig,
) -> HeterogeneityReport {
    let mut segments = segment_activity(stream, config.bins);

    let method = OccupancyMethod::new()
        .grid(SweepGrid::Geometric { points: config.grid_points })
        .threads(config.threads)
        .refine(1, 6);

    let whole = method.clone().run(stream).gamma().map(|g| g.delta_ticks).unwrap_or(f64::NAN);

    for seg in &mut segments {
        if seg.events < config.min_segment_events {
            continue;
        }
        let Some(sub) = stream.restrict(Time::new(seg.start), Time::new(seg.end)) else {
            continue;
        };
        if sub.span() == 0 {
            continue;
        }
        seg.gamma_ticks = method.clone().run(&sub).gamma().map(|g| g.delta_ticks);
    }

    let min_gamma = segments
        .iter()
        .filter_map(|s| s.gamma_ticks)
        .fold(None, |acc: Option<f64>, g| Some(acc.map_or(g, |a| a.min(g))));

    HeterogeneityReport {
        segments,
        whole_stream_gamma_ticks: whole,
        min_segment_gamma_ticks: min_gamma,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saturn_synth::TwoMode;

    fn two_mode_stream() -> LinkStream {
        TwoMode {
            nodes: 20,
            alternations: 4,
            span: 40_000,
            links_high: 10,
            links_low: 1,
            low_share: 0.5,
            seed: 21,
        }
        .generate()
    }

    #[test]
    fn two_means_separates_bimodal_values() {
        let values = [1.0, 1.1, 0.9, 10.0, 9.8, 10.4, 1.05];
        let (classes, (lo, hi)) = two_means(&values);
        assert!(lo < 2.0 && hi > 9.0);
        let highs: Vec<bool> = classes.iter().map(|c| *c == ActivityClass::High).collect();
        assert_eq!(highs, vec![false, false, false, true, true, true, false]);
    }

    #[test]
    fn segmentation_recovers_two_mode_structure() {
        let s = two_mode_stream();
        let segments = segment_activity(&s, 40);
        // 4 alternations of high+low => ~8 segments (boundary bins may merge)
        assert!((4..=12).contains(&segments.len()), "found {} segments", segments.len());
        // classes alternate
        for pair in segments.windows(2) {
            assert_ne!(pair[0].class, pair[1].class, "adjacent segments merged");
        }
        // high segments have higher rates
        let hi_rate: f64 = segments
            .iter()
            .filter(|s| s.class == ActivityClass::High)
            .map(|s| s.rate)
            .sum::<f64>();
        let lo_rate: f64 = segments
            .iter()
            .filter(|s| s.class == ActivityClass::Low)
            .map(|s| s.rate)
            .sum::<f64>();
        assert!(hi_rate > lo_rate);
    }

    #[test]
    fn uniform_stream_is_one_segment_class() {
        let s =
            saturn_synth::TimeUniform { nodes: 10, links_per_pair: 10, span: 10_000, seed: 2 }
                .generate();
        let segments = segment_activity(&s, 20);
        // two-means on near-uniform rates: segments may exist but rates are close
        let rates: Vec<f64> = segments.iter().map(|s| s.rate).collect();
        let max = rates.iter().copied().fold(f64::MIN, f64::max);
        let min = rates.iter().copied().fold(f64::MAX, f64::min);
        assert!(max / min.max(1e-12) < 5.0, "uniform stream splits too sharply: {rates:?}");
    }

    #[test]
    fn per_segment_gammas_reflect_their_mode() {
        let s = two_mode_stream();
        let report = heterogeneous_analysis(
            &s,
            HeterogeneityConfig {
                bins: 40,
                grid_points: 14,
                min_segment_events: 30,
                threads: 2,
            },
        );
        let high_gammas: Vec<f64> = report
            .segments
            .iter()
            .filter(|s| s.class == ActivityClass::High)
            .filter_map(|s| s.gamma_ticks)
            .collect();
        let low_gammas: Vec<f64> = report
            .segments
            .iter()
            .filter(|s| s.class == ActivityClass::Low)
            .filter_map(|s| s.gamma_ticks)
            .collect();
        assert!(!high_gammas.is_empty());
        if !low_gammas.is_empty() {
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            assert!(
                mean(&high_gammas) < mean(&low_gammas),
                "high-activity segments must have smaller γ: {high_gammas:?} vs {low_gammas:?}"
            );
        }
        // the conservative recommendation is no larger than the whole-stream γ
        let min = report.min_segment_gamma_ticks.expect("segments analyzed");
        assert!(min <= report.whole_stream_gamma_ticks * 1.5 + 1.0);
    }

    #[test]
    fn zero_span_stream_single_segment() {
        let mut b = saturn_linkstream::LinkStreamBuilder::new(
            saturn_linkstream::Directedness::Undirected,
        );
        b.add("a", "b", 5);
        let s = b.build().unwrap();
        let segments = segment_activity(&s, 16);
        assert_eq!(segments.len(), 1);
    }
}
