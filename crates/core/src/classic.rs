//! Sweep of the classical graph-series parameters (Figure 2 / Section 3).
//!
//! The paper's motivating observation: density, connectedness and distance
//! statistics all drift smoothly from one extreme to the other as `Δ` grows,
//! exhibiting no qualitative change at any scale — which is why a dedicated
//! method (the occupancy method) is needed. This sweep reproduces those
//! curves.

use crate::parallel::parallel_map;
use crate::{SweepGrid, TargetSpec};
use saturn_graphseries::{snapshot_means, SnapshotMeans};
use saturn_linkstream::LinkStream;
use saturn_trips::{distance_means_on, DistanceMeans, EventView, Timeline};
use serde::Serialize;

/// The classical statistics of `G_Δ` at one scale.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ClassicPoint {
    /// Window count `K`.
    pub k: u64,
    /// Window length `Δ` in ticks.
    pub delta_ticks: f64,
    /// Per-snapshot means: density, degree, non-isolated vertices, largest
    /// connected component (Figure 2, top row).
    pub snapshots: SnapshotMeans,
    /// Temporal distance means: `d_time`, `d_hops`, `d_abstime` (Figure 2,
    /// bottom row).
    pub distances: DistanceMeans,
}

/// Sweeps the classical parameters over `grid`, in parallel.
pub fn classic_sweep(
    stream: &LinkStream,
    grid: &SweepGrid,
    targets: TargetSpec,
    threads: usize,
    delta_min: i64,
) -> Vec<ClassicPoint> {
    let target_set = targets.build(stream.node_count() as u32);
    let view = EventView::new(stream);
    let ks = grid.k_values(stream, delta_min);
    let mut points = parallel_map(&ks, threads, |&k| {
        let timeline = Timeline::aggregated_from_view(&view, k);
        ClassicPoint {
            k,
            delta_ticks: stream.span() as f64 / k as f64,
            snapshots: snapshot_means(stream, k),
            distances: distance_means_on(&timeline, stream.span(), k, &target_set),
        }
    });
    points.sort_unstable_by_key(|p| std::cmp::Reverse(p.k)); // Δ ascending
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use saturn_linkstream::{Directedness, LinkStreamBuilder};

    fn stream() -> LinkStream {
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 10);
        for i in 0..200i64 {
            b.add_indexed((i % 10) as u32, ((i * 3 + 1) % 10) as u32, i * 5);
        }
        b.build().unwrap()
    }

    #[test]
    fn monotone_drifts_match_the_paper() {
        let s = stream();
        let pts =
            classic_sweep(&s, &SweepGrid::Geometric { points: 10 }, TargetSpec::All, 2, 1);
        assert!(pts.len() >= 5);
        let first = pts.first().unwrap(); // finest Δ
        let last = pts.last().unwrap(); // Δ = T
        assert_eq!(last.k, 1);
        // density increases with Δ (Figure 2 top-left)
        assert!(first.snapshots.mean_density < last.snapshots.mean_density);
        // LCC increases with Δ (top-right)
        assert!(
            first.snapshots.mean_largest_component <= last.snapshots.mean_largest_component
        );
        // d_time (in steps) decreases with Δ (bottom-left: ~1/Δ power law)
        assert!(first.distances.mean_dtime_steps > last.distances.mean_dtime_steps);
        // d_hops decreases toward 1 at Δ = T (bottom-right)
        assert!(last.distances.mean_dhops <= first.distances.mean_dhops);
        assert!((last.distances.mean_dhops - 1.0).abs() < 1e-9);
        // d_abstime at Δ = T equals T (single window: d_time = 1)
        assert!((last.distances.mean_dabstime_ticks - s.span() as f64).abs() < 1e-6);
    }

    #[test]
    fn points_are_delta_sorted() {
        let s = stream();
        let pts = classic_sweep(&s, &SweepGrid::Linear { points: 6 }, TargetSpec::All, 1, 1);
        assert!(pts.windows(2).all(|w| w[0].delta_ticks < w[1].delta_ticks));
    }
}
