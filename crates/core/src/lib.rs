//! The occupancy method: automatic detection of the saturation scale of a
//! link stream.
//!
//! This crate is the paper's primary contribution (Léo, Crespelle, Fleury,
//! *Non-Altering Time Scales for Aggregation of Dynamic Networks into Series
//! of Graphs*, CoNEXT 2015). Given a link stream, it determines the
//! **saturation scale γ**: the largest aggregation period `Δ` such that the
//! series of graphs `G_Δ` still faithfully describes the propagation
//! properties of the original stream. Aggregating with `Δ > γ` alters
//! propagation (transitions become unordered inside windows); `Δ <= γ`
//! mostly preserves it.
//!
//! The method is fully automatic and parameter-free: for each candidate `Δ`
//! it computes the distribution of occupancy rates of all minimal trips of
//! `G_Δ` and selects the `Δ` whose distribution is maximally spread over
//! `[0, 1]`, detected as the maximum Monge–Kantorovich proximity to the
//! uniform density distribution.
//!
//! ```
//! use saturn_core::{OccupancyMethod, SweepGrid};
//! use saturn_linkstream::{Directedness, LinkStreamBuilder};
//!
//! // A toy stream: regular activity every 10 ticks.
//! let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 6);
//! for i in 0..60i64 {
//!     b.add_indexed((i % 6) as u32, ((i + 1) % 6) as u32, i * 10);
//! }
//! let stream = b.build().unwrap();
//!
//! let report = OccupancyMethod::new()
//!     .grid(SweepGrid::Geometric { points: 24 })
//!     .threads(1)
//!     .run(&stream);
//! let gamma = report.gamma().expect("non-degenerate stream");
//! assert!(gamma.delta_ticks > 0.0);
//! ```

pub mod classic;
pub mod control;
pub mod fingerprint;
pub mod grid;
pub mod heterogeneity;
pub mod method;
pub mod parallel;
pub mod report;
pub mod selection;
pub mod validation;

pub use classic::{classic_sweep, ClassicPoint};
pub use control::{
    json_trace_from_env, JsonTraceObserver, SweepControl, SweepObserver, SweepProgress,
    TileSpan,
};
pub use grid::SweepGrid;
pub use heterogeneity::{
    heterogeneous_analysis, segment_activity, ActivityClass, ActivitySegment,
    HeterogeneityConfig, HeterogeneityReport,
};
pub use method::{
    DeltaResult, KeepPolicy, OccupancyMethod, RefreshStats, SweepCache, TargetSpec,
    UniformityScores,
};
pub use report::{GammaResult, OccupancyReport};
pub use saturn_trips::{CancelToken, Cancelled};
pub use selection::{compare_selection_methods, SelectionComparison};
pub use validation::{
    try_validation_sweep_on, validation_sweep, validation_sweep_on, ValidationOptions,
    ValidationPoint, ValidationReport,
};
