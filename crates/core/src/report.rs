//! Reports of an occupancy-method run.

use crate::method::{argmax, DeltaResult};
use saturn_distrib::SelectionMetric;
use serde::Serialize;

/// The detected saturation scale.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct GammaResult {
    /// Window count `K` at the maximum.
    pub k: u64,
    /// The saturation scale `γ = T/K`, in ticks.
    pub delta_ticks: f64,
    /// Score of the selected distribution under the report's metric.
    pub score: f64,
}

/// Full result of an occupancy-method sweep: one [`DeltaResult`] per scale,
/// `Δ` ascending, plus the selected saturation scale.
#[derive(Clone, Debug, Serialize)]
pub struct OccupancyReport {
    metric: SelectionMetric,
    results: Vec<DeltaResult>,
}

impl OccupancyReport {
    /// Assembles a report from per-scale results (must be sorted by
    /// ascending `Δ`).
    pub(crate) fn new(metric: SelectionMetric, results: Vec<DeltaResult>) -> Self {
        debug_assert!(results.windows(2).all(|w| w[0].k >= w[1].k));
        OccupancyReport { metric, results }
    }

    /// The metric the sweep was configured with.
    pub fn metric(&self) -> SelectionMetric {
        self.metric
    }

    /// Per-scale results, `Δ` ascending.
    pub fn results(&self) -> &[DeltaResult] {
        &self.results
    }

    /// The saturation scale under the configured metric, if any scale
    /// produced a finite score.
    pub fn gamma(&self) -> Option<GammaResult> {
        self.gamma_for(self.metric)
    }

    /// The scale that `metric` would select on the same sweep (Section 7
    /// comparisons come for free since all scores are computed per scale).
    pub fn gamma_for(&self, metric: SelectionMetric) -> Option<GammaResult> {
        argmax(&self.results, metric).map(|i| {
            let r = &self.results[i];
            GammaResult { k: r.k, delta_ticks: r.delta_ticks, score: r.scores.get(metric) }
        })
    }

    /// `(Δ_ticks, score)` points of the selection curve under the
    /// configured metric — the curves of Figures 3 (right) and 5.
    pub fn score_curve(&self) -> Vec<(f64, f64)> {
        self.curve_for(self.metric)
    }

    /// `(Δ_ticks, score)` points under any metric.
    pub fn curve_for(&self, metric: SelectionMetric) -> Vec<(f64, f64)> {
        self.results.iter().map(|r| (r.delta_ticks, r.scores.get(metric))).collect()
    }

    /// JSON serialization of the whole report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Compact human-readable table. `ticks_per_unit` converts tick counts
    /// into the display unit named `unit` (e.g. 3600.0, "h" for 1-second
    /// ticks shown in hours).
    pub fn render_text(&self, ticks_per_unit: f64, unit: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let gamma = self.gamma();
        writeln!(out, "occupancy method — metric: {}", self.metric).unwrap();
        writeln!(
            out,
            "{:>14} {:>10} {:>12} {:>10} {:>10}  ",
            format!("Δ ({unit})"),
            "K",
            "trips",
            "score",
            "P[occ=1]"
        )
        .unwrap();
        for r in &self.results {
            let mark = match gamma {
                Some(g) if g.k == r.k => "  <= γ (saturation scale)",
                _ => "",
            };
            writeln!(
                out,
                "{:>14.4} {:>10} {:>12} {:>10.4} {:>10.4}{mark}",
                r.delta_ticks / ticks_per_unit,
                r.k,
                r.trips,
                r.scores.get(self.metric),
                r.fraction_at_one,
            )
            .unwrap();
        }
        if let Some(g) = gamma {
            writeln!(
                out,
                "γ = {:.4} {unit} (K = {}, score = {:.4})",
                g.delta_ticks / ticks_per_unit,
                g.k,
                g.score
            )
            .unwrap();
        } else {
            writeln!(out, "no finite score — degenerate stream").unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::{KeepPolicy, OccupancyMethod};
    use crate::SweepGrid;
    use saturn_linkstream::{Directedness, LinkStreamBuilder};

    fn stream() -> saturn_linkstream::LinkStream {
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 6);
        for i in 0..48i64 {
            b.add_indexed((i % 6) as u32, ((i + 2) % 6) as u32, i * 3);
        }
        b.build().unwrap()
    }

    fn report() -> OccupancyReport {
        OccupancyMethod::new()
            .grid(SweepGrid::Geometric { points: 10 })
            .threads(1)
            .refine(0, 0)
            .keep(KeepPolicy::ScoresOnly)
            .run(&stream())
    }

    #[test]
    fn json_round_trip_is_valid_json() {
        let r = report();
        let json = r.to_json();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(value.get("results").unwrap().as_array().unwrap().len() >= 2);
    }

    #[test]
    fn text_rendering_mentions_gamma() {
        let r = report();
        let text = r.render_text(1.0, "ticks");
        assert!(text.contains("saturation scale"));
        assert!(text.contains("γ ="));
    }

    #[test]
    fn gamma_for_all_metrics() {
        let r = report();
        for metric in SelectionMetric::all() {
            let g = r.gamma_for(metric);
            assert!(g.is_some(), "metric {metric} selected nothing");
        }
    }

    #[test]
    fn curves_have_one_point_per_scale() {
        let r = report();
        assert_eq!(r.score_curve().len(), r.results().len());
        let c = r.curve_for(SelectionMetric::Cre);
        assert!(c.windows(2).all(|w| w[0].0 < w[1].0), "Δ ascending");
    }
}
