//! Content-addressed fingerprints of link streams and analysis requests.
//!
//! The long-lived analysis service caches serialized reports keyed by *what
//! was asked of which data*: the canonical event set (the stream is a set of
//! `(u, v, t)` triplets sorted by `(t, u, v)` with duplicates and self-loops
//! removed at build time), its directedness and study period, and the request
//! parameters that influence the result (grid, target spec, sweep knobs).
//! Two requests with the same key are guaranteed the same report — the sweep
//! is deterministic across thread counts (see `core/tests/determinism.rs`) —
//! so a cache hit can be served byte-identically without touching the engine.
//!
//! Keys are 128-bit: two independently seeded [`FxHasher`] streams over the
//! same input words. Fx is not cryptographic; this is a cache key for a
//! trusted deployment, not an integrity check, and 128 bits make accidental
//! collisions astronomically unlikely at any realistic cache population.

use crate::{SweepGrid, TargetSpec};
use rustc_hash::FxHasher;
use saturn_linkstream::LinkStream;
use std::hash::Hasher;

/// Domain-separation constant mixed into the second hash lane so the two
/// 64-bit halves of a key never collapse to the same function.
const LANE_B_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// A 128-bit content digest accumulator (two seeded Fx lanes).
#[derive(Clone)]
pub struct Digest {
    a: FxHasher,
    b: FxHasher,
}

impl Digest {
    /// Starts a digest in `domain` (a short static tag keeping digests of
    /// different kinds — streams, analyze requests, validate requests — in
    /// disjoint key spaces).
    pub fn new(domain: &str) -> Self {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        b.write_u64(LANE_B_SEED);
        a.write(domain.as_bytes());
        b.write(domain.as_bytes());
        Digest { a, b }
    }

    /// Mixes one unsigned word into both lanes.
    pub fn write_u64(&mut self, word: u64) {
        self.a.write_u64(word);
        self.b.write_u64(word);
    }

    /// Mixes one signed word into both lanes.
    pub fn write_i64(&mut self, word: i64) {
        self.write_u64(word as u64);
    }

    /// Mixes a 128-bit key (e.g. a nested [`stream_digest`]) into both
    /// lanes.
    pub fn write_u128(&mut self, key: u128) {
        self.write_u64((key >> 64) as u64);
        self.write_u64(key as u64);
    }

    /// Mixes a byte string (length-prefixed, so `("ab", "c")` and
    /// `("a", "bc")` digest differently).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.a.write(s.as_bytes());
        self.b.write(s.as_bytes());
    }

    /// Finalizes the 128-bit key.
    pub fn finish(self) -> u128 {
        ((self.a.finish() as u128) << 64) | self.b.finish() as u128
    }
}

/// Canonical content digest of a stream: directedness, node labels, study
/// period, build-time drop counters, and every event. The digest is taken
/// over *labels*, not interned node ids, with labels and events put into a
/// canonical order first — node numbering depends on the order labels first
/// appear in the input, so two files listing the same triplets in different
/// line orders still share a digest. That is what makes report caching
/// *content*-addressed rather than byte-addressed.
///
/// The drop counters are included because they are part of the observable
/// stats surface (`saturn stats` reports them), so inputs differing only in
/// discarded rows stay distinguishable.
pub fn stream_digest(stream: &LinkStream) -> u128 {
    let mut d = Digest::new("saturn.stream.v1");
    d.write_u64(stream.is_directed() as u64);
    d.write_u64(stream.node_count() as u64);
    let mut labels: Vec<&str> = stream.labels().iter().map(String::as_str).collect();
    labels.sort_unstable();
    for label in labels {
        d.write_str(label);
    }
    d.write_i64(stream.t_begin().ticks());
    d.write_i64(stream.t_end().ticks());
    d.write_u64(stream.dropped_self_loops() as u64);
    d.write_u64(stream.dropped_duplicates() as u64);
    d.write_u64(stream.len() as u64);
    // canonical event order: (t, label_u, label_v), with undirected pairs
    // normalized label-lexicographically (id-order `u <= v` is
    // interning-dependent)
    let mut events: Vec<(i64, &str, &str)> = stream
        .events()
        .iter()
        .map(|link| {
            let (mut a, mut b) = (stream.label(link.u), stream.label(link.v));
            if !stream.is_directed() && a > b {
                std::mem::swap(&mut a, &mut b);
            }
            (link.t.ticks(), a, b)
        })
        .collect();
    events.sort_unstable();
    for (t, a, b) in events {
        d.write_i64(t);
        d.write_str(a);
        d.write_str(b);
    }
    d.finish()
}

/// Mixes a sweep grid into a digest.
pub fn write_grid(d: &mut Digest, grid: &SweepGrid) {
    match grid {
        SweepGrid::Geometric { points } => {
            d.write_u64(1);
            d.write_u64(*points as u64);
        }
        SweepGrid::Linear { points } => {
            d.write_u64(2);
            d.write_u64(*points as u64);
        }
        SweepGrid::ExplicitK(ks) => {
            d.write_u64(3);
            d.write_u64(ks.len() as u64);
            for &k in ks {
                d.write_u64(k);
            }
        }
    }
}

/// Mixes a target spec into a digest.
pub fn write_targets(d: &mut Digest, targets: &TargetSpec) {
    match *targets {
        TargetSpec::All => d.write_u64(1),
        TargetSpec::Sample { size, seed } => {
            d.write_u64(2);
            d.write_u64(size as u64);
            d.write_u64(seed);
        }
    }
}

/// Lower-hex rendering of a key (stable across runs; suitable as an HTTP
/// cache identifier).
pub fn hex(key: u128) -> String {
    format!("{key:032x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use saturn_linkstream::{io, Directedness};

    #[test]
    fn same_content_same_digest_across_input_noise() {
        let a = io::read_str("a b 1\nb c 5\n", Directedness::Undirected).unwrap();
        // KONECT layout, reordered lines, comments — same canonical content
        let b = io::read_str("% hdr\nb c 9 5\na b 4 1\n", Directedness::Undirected).unwrap();
        assert_eq!(stream_digest(&a), stream_digest(&b));
    }

    #[test]
    fn content_changes_change_the_digest() {
        let base = io::read_str("a b 1\nb c 5\n", Directedness::Undirected).unwrap();
        let shifted = io::read_str("a b 1\nb c 6\n", Directedness::Undirected).unwrap();
        let directed = io::read_str("a b 1\nb c 5\n", Directedness::Directed).unwrap();
        let relabeled = io::read_str("a b 1\nb d 5\n", Directedness::Undirected).unwrap();
        let with_dup = io::read_str("a b 1\na b 1\nb c 5\n", Directedness::Undirected).unwrap();
        let d0 = stream_digest(&base);
        assert_ne!(d0, stream_digest(&shifted));
        assert_ne!(d0, stream_digest(&directed));
        assert_ne!(d0, stream_digest(&relabeled));
        // same canonical events, but the duplicate is an observable stat
        assert_ne!(d0, stream_digest(&with_dup));
    }

    #[test]
    fn request_parameters_separate_keys() {
        let s = io::read_str("a b 1\nb c 5\n", Directedness::Undirected).unwrap();
        let key = |points: usize, targets: &TargetSpec| {
            let mut d = Digest::new("saturn.analyze.v1");
            d.write_u128(stream_digest(&s));
            write_grid(&mut d, &SweepGrid::Geometric { points });
            write_targets(&mut d, targets);
            d.finish()
        };
        let all = TargetSpec::All;
        let sampled = TargetSpec::Sample { size: 8, seed: 3 };
        assert_ne!(key(16, &all), key(24, &all));
        assert_ne!(key(16, &all), key(16, &sampled));
        assert_ne!(key(16, &sampled), key(16, &TargetSpec::Sample { size: 8, seed: 4 }));
    }

    /// Pinned key values: the report cache survives engine reworks only if
    /// fingerprints never move (a moved key silently invalidates every
    /// cached report and breaks cold/cached byte-identity guarantees made
    /// to clients). These constants were recorded when the digest scheme
    /// was introduced; an engine or digest change that shifts them must be
    /// a deliberate, versioned decision (bump the domain tags), not an
    /// accident — this test makes the accident loud. Execution knobs
    /// (`tile`, `no_delta_propagation`) must never feed these digests.
    #[test]
    fn fingerprints_are_pinned() {
        let s = io::read_str("a b 1\nb c 5\nc a 9\n", Directedness::Undirected).unwrap();
        assert_eq!(
            hex(stream_digest(&s)),
            "99bdfba880adc220837ee81b786ac528",
            "stream digest moved"
        );
        let mut d = Digest::new("saturn.analyze.v1");
        d.write_u128(stream_digest(&s));
        write_grid(&mut d, &SweepGrid::Geometric { points: 16 });
        write_targets(&mut d, &TargetSpec::All);
        assert_eq!(
            hex(d.finish()),
            "1d8eaee1c57818b6acd707e5584443d1",
            "analyze request digest moved"
        );
    }

    #[test]
    fn domains_are_disjoint_and_hex_is_stable() {
        let mut a = Digest::new("saturn.analyze.v1");
        let mut v = Digest::new("saturn.validate.v1");
        a.write_u64(7);
        v.write_u64(7);
        let (ka, kv) = (a.finish(), v.finish());
        assert_ne!(ka, kv);
        assert_eq!(hex(ka).len(), 32);
        assert_eq!(hex(ka), hex(ka));
    }
}
