//! Work-stealing parallel map over sweep items.
//!
//! Each aggregation scale is analyzed independently, so the sweep is
//! embarrassingly parallel. The fine scales carry most of the work (the
//! paper: "the most costly computations are the ones made for small values of
//! Δ, as M is then large"), so items are dispatched dynamically through a
//! shared atomic cursor rather than pre-partitioned.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, using `threads` worker threads (0 = all
/// available cores, capped by the item count). Results are returned in input
/// order. Panics in workers propagate.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                results.lock().push((i, r));
            });
        }
    })
    .expect("sweep worker panicked");

    let mut pairs = results.into_inner();
    pairs.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), items.len());
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Resolves a requested thread count: 0 means "all available cores".
pub fn effective_threads(requested: usize, items: usize) -> usize {
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let t = if requested == 0 { avail } else { requested };
    t.clamp(1, items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let items = vec![1, 2, 3];
        let out = parallel_map(&items, 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn zero_means_auto() {
        let items: Vec<u32> = (0..100).collect();
        let out = parallel_map(&items, 0, |&x| x);
        assert_eq!(out.len(), 100);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(16, 4), 4); // capped by items
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        let out = parallel_map(&items, 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_is_balanced() {
        // heavier work for early items; just checks completion & order
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 8, |&x| {
            let mut acc = 0u64;
            for i in 0..(64 - x) * 1000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }
}
