//! The sweep's persistent worker pool and the tiled work queue.
//!
//! Each aggregation scale is analyzed independently, so the sweep is
//! embarrassingly parallel along the scale axis; in addition the DP's
//! columns are independent (tile locality, `trips::dp` module docs), so
//! every scale can be split into *target tiles* that run concurrently and
//! whose histograms merge exactly. [`sweep_queue`] materializes that
//! two-axis decomposition as a flat list of `(scale, tile)` items in
//! size-aware order — finest scales first, since step count drives cost
//! (the paper: "the most costly computations are the ones made for small
//! values of Δ, as M is then large") — and items are dispatched dynamically
//! through a shared atomic cursor rather than pre-partitioned, so the
//! expensive head of the queue spreads across workers while the cheap tail
//! backfills.
//!
//! Unlike the earlier per-call `crossbeam::thread::scope` + `Mutex<Vec>` +
//! sort design, a [`WorkerPool`] spawns its OS threads **once** and reuses
//! them for every [`map`](WorkerPool::map) call — the occupancy method runs
//! one coarse sweep plus several refinement rounds per analysis, and thread
//! spawn/join latency per round is pure overhead. Results are written into
//! pre-sized slots by item index (no result mutex, no post-hoc sort), and
//! the worker id passed to the callback lets callers pin per-worker scratch
//! state (the DP engine's [`EngineArena`](saturn_trips::EngineArena)) for
//! the pool's whole lifetime.
//!
//! # Safety model
//!
//! `map` publishes a pointer to a stack-local closure to the workers, then
//! blocks until every worker has finished the round — the closure therefore
//! never outlives the frame that owns it. Worker panics are caught, recorded,
//! and re-raised on the calling thread after the round completes; partially
//! initialized result slots are dropped correctly via per-slot written
//! flags.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The erased per-round work function: takes the worker id.
type Round = &'static (dyn Fn(usize) + Sync);

struct PoolState {
    /// The published round, if one is in flight.
    round: Option<Round>,
    /// Round counter; workers run each generation exactly once.
    generation: u64,
    /// Workers still executing the current generation.
    active: usize,
    /// A worker panicked during the current generation.
    panicked: bool,
    /// Pool is shutting down.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_available: Condvar,
    round_done: Condvar,
}

/// A persistent team of worker threads executing parallel maps over sweep
/// items. Create once per analysis, reuse for every round.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    /// Total parallelism: spawned workers + the calling thread.
    parallelism: usize,
}

impl WorkerPool {
    /// Creates a pool with `threads` total parallelism (0 = all available
    /// cores). The calling thread participates in every round, so
    /// `threads - 1` OS threads are spawned; `threads <= 1` spawns none and
    /// every map runs inline.
    pub fn new(threads: usize) -> Self {
        let parallelism = resolve_threads(threads);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                round: None,
                generation: 0,
                active: 0,
                panicked: false,
                shutdown: false,
            }),
            work_available: Condvar::new(),
            round_done: Condvar::new(),
        });
        let workers = (0..parallelism.saturating_sub(1))
            .map(|wid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("saturn-sweep-{wid}"))
                    .spawn(move || worker_loop(&shared, wid))
                    .expect("cannot spawn sweep worker")
            })
            .collect();
        WorkerPool { shared, workers, parallelism }
    }

    /// Total parallelism (spawned workers + calling thread); worker ids
    /// passed to `map` callbacks lie in `0..parallelism()`.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Applies `f` to every item, dispatching dynamically across the pool.
    /// Results land in input order. `f` receives `(worker_id, &item)`;
    /// `worker_id` is stable within a call and lies in `0..parallelism()`.
    /// Panics in `f` propagate to the caller after the round drains.
    /// (`&mut self` enforces one round in flight per pool.)
    pub fn map<T, R, F>(&mut self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        if self.parallelism <= 1 || items.len() == 1 {
            return items.iter().map(|item| f(0, item)).collect();
        }

        let slots = Slots::new(items.len());
        let cursor = AtomicUsize::new(0);
        let work = |wid: usize| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= items.len() {
                break;
            }
            slots.write(i, f(wid, &items[i]));
        };

        // Publish the round. The transmute erases the stack lifetime; the
        // wait below guarantees no worker touches the pointer after this
        // frame ends.
        let round_ref: &(dyn Fn(usize) + Sync) = &work;
        let round: Round =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), Round>(round_ref) };
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            debug_assert!(state.round.is_none(), "map is not reentrant");
            state.round = Some(round);
            state.generation += 1;
            state.active = self.workers.len();
            state.panicked = false;
            self.shared.work_available.notify_all();
        }

        // The calling thread is the last worker (id = parallelism - 1).
        let caller_outcome = catch_unwind(AssertUnwindSafe(|| work(self.parallelism - 1)));

        // Drain the round before looking at outcomes or returning.
        let panicked = {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            while state.active > 0 {
                state = self.shared.round_done.wait(state).expect("pool state poisoned");
            }
            state.round = None;
            state.panicked
        };
        if panicked || caller_outcome.is_err() {
            // `slots` drops its initialized entries
            match caller_outcome {
                Err(payload) => std::panic::resume_unwind(payload),
                Ok(()) => panic!("sweep worker panicked"),
            }
        }
        slots.into_results()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.shutdown = true;
            self.shared.work_available.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, wid: usize) {
    let mut last_generation = 0u64;
    loop {
        let round = {
            let mut state = shared.state.lock().expect("pool state poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(round) = state.round {
                    if state.generation != last_generation {
                        last_generation = state.generation;
                        break round;
                    }
                }
                state = shared.work_available.wait(state).expect("pool state poisoned");
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| round(wid)));
        let mut state = shared.state.lock().expect("pool state poisoned");
        if outcome.is_err() {
            state.panicked = true;
        }
        state.active -= 1;
        if state.active == 0 {
            shared.round_done.notify_all();
        }
    }
}

/// Pre-sized, index-addressed result storage. Workers write disjoint slots;
/// the written flags make partially filled storage (panic paths) safe to
/// drop.
struct Slots<R> {
    data: Vec<UnsafeCell<MaybeUninit<R>>>,
    written: Vec<AtomicBool>,
}

// Safety: slot writes are disjoint by construction (each index is claimed by
// exactly one cursor fetch_add) and the written flags use release/acquire
// ordering.
unsafe impl<R: Send> Sync for Slots<R> {}

impl<R> Slots<R> {
    fn new(len: usize) -> Self {
        Slots {
            data: (0..len).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect(),
            written: (0..len).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    fn write(&self, i: usize, value: R) {
        unsafe { (*self.data[i].get()).write(value) };
        self.written[i].store(true, Ordering::Release);
    }

    fn into_results(mut self) -> Vec<R> {
        let mut out = Vec::with_capacity(self.data.len());
        for (cell, flag) in self.data.iter().zip(&self.written) {
            assert!(
                flag.swap(false, Ordering::Acquire),
                "sweep round ended with an unwritten slot"
            );
            out.push(unsafe { (*cell.get()).assume_init_read() });
        }
        self.data.clear(); // flags already false: Drop has nothing left
        self.written.clear();
        out
    }
}

impl<R> Drop for Slots<R> {
    fn drop(&mut self) {
        for (cell, flag) in self.data.iter().zip(&self.written) {
            if flag.load(Ordering::Acquire) {
                unsafe { (*cell.get()).assume_init_drop() };
            }
        }
    }
}

/// Applies `f` to every item with `threads` total parallelism (0 = all
/// available cores). Results are returned in input order; worker panics
/// propagate. Single-sweep convenience over a transient [`WorkerPool`];
/// multi-round callers should hold a pool and call
/// [`WorkerPool::map`] directly.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let mut pool = WorkerPool::new(threads);
    pool.map(items, |_wid, item| f(item))
}

/// One unit of tiled sweep work: a contiguous target-column range of one
/// aggregation scale. Produced by [`sweep_queue`]; the per-tile histograms
/// of one scale merge in ascending `tile` order to reproduce the untiled
/// scale bit for bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepItem {
    /// Index of the scale in the caller's `ks` list.
    pub scale: usize,
    /// Window count of the scale (the cost proxy: more windows, more steps).
    pub k: u64,
    /// First target column of the tile.
    pub col_start: u32,
    /// Number of columns in the tile.
    pub col_len: u32,
    /// Tile index within the scale — the deterministic merge order.
    pub tile: usize,
    /// Total tiles of this scale (1 = the scale runs untiled).
    pub tiles_in_scale: usize,
}

/// Builds the tiled work queue over `ks` scales × the given column tiles
/// (`(col_start, col_len)` pairs, ascending — the single source of tiling
/// semantics is [`TargetSet::tile_ranges`](saturn_trips::TargetSet::tile_ranges)),
/// sorted size-aware: finest scale (largest `k`) first, tiles of one scale
/// in ascending column order.
pub fn sweep_queue(ks: &[u64], tile_ranges: &[(u32, u32)]) -> Vec<SweepItem> {
    let tiles_in_scale = tile_ranges.len();
    let mut items = Vec::with_capacity(ks.len() * tiles_in_scale);
    for (scale, &k) in ks.iter().enumerate() {
        for (tile, &(col_start, col_len)) in tile_ranges.iter().enumerate() {
            items.push(SweepItem { scale, k, col_start, col_len, tile, tiles_in_scale });
        }
    }
    // finest first; stable so tiles of one scale keep ascending order, and
    // equal-k scales (possible across refinement bookkeeping) keep list
    // order
    items.sort_by_key(|item| std::cmp::Reverse(item.k));
    items
}

/// Largest fine-to-coarse window ratio the sweep will bridge by merging.
/// Merging is linear in the fine timeline's edges plus, per merged coarse
/// window, a walk over the touched words of a pair-id bitmap
/// (`Timeline::aggregated_by_merge` docs); what grows with the ratio is
/// only how much *finer* the source is than the target needs — at extreme
/// ratios the fine timeline carries far more pre-dedup edges than the
/// scratch build would ever scan, so chaining stops paying and the scratch
/// radix scatter (linear in raw events) wins.
const MAX_MERGE_RATIO: u64 = 256;

/// The incremental-timeline merge plan for a descending-sorted scale list:
/// `plan[i] = Some(j)` means scale `i`'s timeline is derived from scale
/// `j`'s by adjacent-window merging (`Timeline::aggregated_by_merge`), and
/// `None` means a scratch build from the shared event view.
///
/// For each scale the *nearest* preceding (finer) scale whose window count
/// it divides is chosen — the smallest merge ratio, hence the cheapest
/// merge — capped at [`MAX_MERGE_RATIO`]. Because [`sweep_queue`] orders
/// items finest-first and `j < i` always holds, a scale's merge source is
/// claimed earlier in the queue than the scale itself, so chained builds
/// run fine-to-coarse along the existing dispatch order; non-divisor
/// neighbors simply fall back to scratch builds.
pub fn merge_sources(ks: &[u64]) -> Vec<Option<usize>> {
    debug_assert!(ks.windows(2).all(|w| w[0] > w[1]), "ks must be sorted descending");
    ks.iter()
        .enumerate()
        .map(|(i, &k)| {
            ks[..i]
                .iter()
                .rposition(|&fine| fine.is_multiple_of(k) && fine / k <= MAX_MERGE_RATIO)
        })
        .collect()
}

/// Picks a tile width for `ncols` target columns swept over `scales` scales
/// on `parallelism` workers. Scale-level parallelism is free (no duplicated
/// per-edge work), so tiling only kicks in when the scale count alone
/// cannot feed the pool — single scales, narrow refinement rounds, wide
/// machines — and then aims for a few items per worker while keeping tiles
/// wide enough that per-traversal fixed costs stay amortized.
pub fn auto_tile_cols(ncols: usize, scales: usize, parallelism: usize) -> usize {
    /// Below this width, per-edge bookkeeping duplicated per tile stops
    /// being noise next to the per-column DP work.
    const MIN_TILE: usize = 16;
    if parallelism <= 1 || ncols <= MIN_TILE || scales >= 4 * parallelism {
        return ncols;
    }
    let want_items = 4 * parallelism;
    let tiles_per_scale = want_items.div_ceil(scales.max(1)).max(1);
    ncols.div_ceil(tiles_per_scale).max(MIN_TILE).min(ncols)
}

/// Resolves a requested total parallelism: 0 means "all available cores".
fn resolve_threads(requested: usize) -> usize {
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if requested == 0 {
        avail
    } else {
        requested.max(1)
    }
}

/// Resolves a requested thread count against an item count: 0 means "all
/// available cores", and the result never exceeds the item count.
pub fn effective_threads(requested: usize, items: usize) -> usize {
    resolve_threads(requested).clamp(1, items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let items = vec![1, 2, 3];
        let out = parallel_map(&items, 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn zero_means_auto() {
        let items: Vec<u32> = (0..100).collect();
        let out = parallel_map(&items, 0, |&x| x);
        assert_eq!(out.len(), 100);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(16, 4), 4); // capped by items
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        let out = parallel_map(&items, 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_is_balanced() {
        // heavier work for early items; just checks completion & order
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 8, |&x| {
            let mut acc = 0u64;
            for i in 0..(64 - x) * 1000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn pool_survives_many_rounds() {
        let mut pool = WorkerPool::new(4);
        for round in 0..50u64 {
            let items: Vec<u64> = (0..37).collect();
            let out = pool.map(&items, |_wid, &x| x + round);
            assert_eq!(out, (0..37).map(|x| x + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_ids_are_in_range_and_usable_as_scratch_keys() {
        let mut pool = WorkerPool::new(4);
        let scratch: Vec<Mutex<u64>> = (0..pool.parallelism()).map(|_| Mutex::new(0)).collect();
        let items: Vec<u64> = (0..500).collect();
        let out = pool.map(&items, |wid, &x| {
            let mut slot = scratch[wid].lock().unwrap();
            *slot += 1;
            x
        });
        assert_eq!(out.len(), 500);
        let total: u64 = scratch.iter().map(|m| *m.lock().unwrap()).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn worker_panic_propagates_and_pool_stays_usable() {
        let mut pool = WorkerPool::new(4);
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map(&items, |_wid, &x| {
                if x == 13 {
                    panic!("injected failure");
                }
                x
            })
        }));
        assert!(result.is_err(), "panic must propagate");
        // pool remains operational for subsequent rounds
        let out = pool.map(&items, |_wid, &x| x * 3);
        assert_eq!(out[21], 63);
    }

    #[test]
    fn sweep_queue_is_finest_first_and_covers_all_tiles() {
        // unsorted ks on purpose: the queue must order by cost, not input
        // (ranges = TargetSet::all(10).tile_ranges(4))
        let items = sweep_queue(&[10, 1000, 50], &[(0, 4), (4, 4), (8, 2)]);
        // 3 scales × 3 tiles (4 + 4 + 2)
        assert_eq!(items.len(), 9);
        // finest (largest k) first
        let ks: Vec<u64> = items.iter().map(|i| i.k).collect();
        assert_eq!(ks, vec![1000, 1000, 1000, 50, 50, 50, 10, 10, 10]);
        // tiles of one scale stay in ascending column order
        for scale_items in items.chunks(3) {
            assert_eq!(scale_items[0].col_start, 0);
            assert_eq!(scale_items[1].col_start, 4);
            assert_eq!(scale_items[2].col_start, 8);
            assert_eq!(scale_items[2].col_len, 2);
            assert!(scale_items.iter().all(|i| i.tiles_in_scale == 3));
            assert_eq!(scale_items.iter().map(|i| i.tile).collect::<Vec<_>>(), vec![0, 1, 2]);
        }
        // scale indices refer to the ORIGINAL ks positions
        assert_eq!(items[0].scale, 1);
        assert_eq!(items[3].scale, 2);
        assert_eq!(items[6].scale, 0);
    }

    #[test]
    fn sweep_queue_untiled_layout() {
        let items = sweep_queue(&[7, 3], &[(0, 10)]);
        assert_eq!(items.len(), 2);
        assert!(items.iter().all(|i| i.col_len == 10 && i.tiles_in_scale == 1));
    }

    #[test]
    fn auto_tile_prefers_scale_parallelism() {
        // plenty of scales: no tiling
        assert_eq!(auto_tile_cols(1000, 64, 8), 1000);
        // single thread: never tile
        assert_eq!(auto_tile_cols(1000, 1, 1), 1000);
        // single scale on a wide machine: tiles sized for ~4 items/worker
        let tile = auto_tile_cols(1000, 1, 8);
        assert!((16..1000).contains(&tile), "tile = {tile}");
        assert!(1000usize.div_ceil(tile) >= 8, "enough items to feed the pool");
        // tiny column counts stay untiled regardless of width
        assert_eq!(auto_tile_cols(12, 1, 64), 12);
    }

    #[test]
    fn merge_sources_prefers_nearest_divisor() {
        // 100 merges from 1000 (nearest divisor, ratio 10), not 100000;
        // 640 divides nothing finer; 10 merges from 100; 1 from 10
        let ks = [100_000u64, 1_000, 640, 100, 10, 1];
        assert_eq!(merge_sources(&ks), vec![None, Some(0), None, Some(1), Some(3), Some(4)]);
    }

    #[test]
    fn merge_sources_respects_ratio_cap() {
        // 100000 -> 2 divides but the ratio (50000) is past the cap; 7 has
        // no divisor-related finer scale at all
        assert_eq!(merge_sources(&[100_000, 7, 2]), vec![None, None, None]);
        // at exactly the cap the merge is taken
        assert_eq!(merge_sources(&[512, 2]), vec![None, Some(0)]);
    }

    #[test]
    fn merge_sources_chains_along_ladders() {
        let ks = [1_000u64, 500, 250, 50, 10, 5, 1];
        let plan = merge_sources(&ks);
        // every scale after the finest chains from its immediate neighbor
        assert_eq!(plan, vec![None, Some(0), Some(1), Some(2), Some(3), Some(4), Some(5)]);
    }

    #[test]
    fn results_drop_correctly_on_panic() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted(#[allow(dead_code)] u32);
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let mut pool = WorkerPool::new(2);
        let items: Vec<u32> = (0..16).collect();
        DROPS.store(0, Ordering::SeqCst);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map(&items, |_wid, &x| {
                if x == 7 {
                    panic!("boom");
                }
                Counted(x)
            })
        }));
        assert!(result.is_err());
        // every successfully produced value was dropped exactly once (15
        // produced, one panicked before producing)
        assert_eq!(DROPS.load(Ordering::SeqCst), 15);
    }
}
