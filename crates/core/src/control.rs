//! Out-of-band control surface of a running sweep: cooperative cancellation
//! plus coarse progress accounting, shared between the party that launched
//! the sweep (an analysis service, a CLI signal handler) and the workers
//! executing it.
//!
//! A [`SweepControl`] is handed to [`OccupancyMethod::try_run_on`] or
//! [`try_validation_sweep_on`]; firing its [`CancelToken`] makes the sweep
//! stop at the next `(scale, tile)` item boundary — and, inside a running
//! DP, within one [`CANCEL_STRIDE`](saturn_trips::CANCEL_STRIDE) of steps —
//! after which the entry point returns [`Cancelled`] and every partial
//! result is discarded. A control whose token never fires is pure overhead
//! of a few relaxed atomic reads per work item: it cannot change results,
//! which is what keeps execution knobs out of report bytes and cache
//! fingerprints (the knob-matrix invariant).
//!
//! [`OccupancyMethod::try_run_on`]: crate::OccupancyMethod::try_run_on
//! [`try_validation_sweep_on`]: crate::try_validation_sweep_on

use saturn_trips::CancelToken;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Progress of a sweep in whole *scales* (grid points fully analyzed over
/// all their tiles). Coarse on purpose: scales are the unit a client can
/// reason about (`scales_done/scales_total` in timeout error bodies), and
/// the counters are only touched once per scale, not per tile.
///
/// `total` is set when the sweep starts from the initial grid size and grows
/// as refinement rounds append scales, so `done == total` only at the very
/// end — a snapshot mid-run can show a total that later increases.
#[derive(Debug, Default)]
pub struct SweepProgress {
    done: AtomicU64,
    total: AtomicU64,
}

impl SweepProgress {
    /// `(done, total)` at this instant.
    pub fn snapshot(&self) -> (u64, u64) {
        (self.done.load(Ordering::Acquire), self.total.load(Ordering::Acquire))
    }

    /// Sets the expected scale count (used by submitters that know the grid
    /// size before the sweep starts; overwritten with the authoritative
    /// value when the sweep itself begins).
    pub fn set_total(&self, scales: u64) {
        self.total.store(scales, Ordering::Release);
    }

    /// Grows the expected scale count (refinement rounds).
    pub fn add_total(&self, scales: u64) {
        self.total.fetch_add(scales, Ordering::AcqRel);
    }

    /// Records `scales` more scales as fully analyzed.
    pub fn add_done(&self, scales: u64) {
        self.done.fetch_add(scales, Ordering::AcqRel);
    }
}

/// One completed `(scale, tile)` work item of a sweep, reported to a
/// [`SweepObserver`] the moment its DP finishes. Purely observational: every
/// field is measured *after* the tile's histogram is sealed, so an observer
/// — however slow — can delay the sweep but never change its output.
#[derive(Clone, Copy, Debug)]
pub struct TileSpan {
    /// The scale (number of aggregation windows `k`) this tile belongs to.
    pub k: u64,
    /// First destination column of the tile.
    pub col_start: u32,
    /// Number of destination columns.
    pub col_len: u32,
    /// Wall time of the tile's DP, in seconds.
    pub seconds: f64,
    /// Minimal trips reported by the tile ([`saturn_trips::DpStats`]).
    pub trips: u64,
    /// Edge traversals processed (repeated per tile, not partitioned).
    pub traversals: u64,
    /// Chain offers emitted after delta filtering.
    pub chain_offers: u64,
    /// Snapshot entries appended after delta filtering.
    pub snap_entries: u64,
    /// Steps taken through the degree-1 fast path.
    pub degree1_steps: u64,
    /// Whether this tile completed its scale (all sibling tiles done).
    pub last_tile_of_scale: bool,
}

impl TileSpan {
    /// The span as one JSON line (no trailing newline) — the
    /// `SATURN_TRACE=json` wire format. Hand-rolled: every field is a
    /// number or bool, and keeping core free of serializer dependencies
    /// matters more than generality here.
    pub fn to_json_line(&self) -> String {
        format!(
            concat!(
                "{{\"span\":\"tile\",\"k\":{},\"col_start\":{},\"col_len\":{},",
                "\"seconds\":{:.6},\"trips\":{},\"traversals\":{},\"chain_offers\":{},",
                "\"snap_entries\":{},\"degree1_steps\":{},\"last_tile_of_scale\":{}}}"
            ),
            self.k,
            self.col_start,
            self.col_len,
            self.seconds,
            self.trips,
            self.traversals,
            self.chain_offers,
            self.snap_entries,
            self.degree1_steps,
            self.last_tile_of_scale,
        )
    }
}

/// Callback surface for per-tile sweep telemetry, attached to a
/// [`SweepControl`]. Called from worker threads, possibly concurrently —
/// implementations must be cheap and internally synchronized. Cancelled
/// tiles are never reported (their stats are garbage by contract).
///
/// Like the cancel token and progress counters, an observer is an
/// *execution* knob: attaching one cannot change report bytes or cache
/// fingerprints (see the module docs and the knob-matrix CI job).
pub trait SweepObserver: Send + Sync {
    /// One `(scale, tile)` item finished; `span` is its measurement.
    fn tile_done(&self, span: &TileSpan);
}

/// A [`SweepObserver`] that writes each span as a JSON line to stderr — the
/// `SATURN_TRACE=json` sink, shared by the CLI and the server. Lines go
/// through a single locked write each, so concurrent workers interleave at
/// line granularity only.
#[derive(Debug, Default)]
pub struct JsonTraceObserver;

impl SweepObserver for JsonTraceObserver {
    fn tile_done(&self, span: &TileSpan) {
        let mut line = span.to_json_line();
        line.push('\n');
        let _ = std::io::stderr().write_all(line.as_bytes());
    }
}

/// Whether `SATURN_TRACE=json` is set in the environment — the CLI and
/// server both consult this to decide if a [`JsonTraceObserver`] should be
/// attached.
pub fn json_trace_from_env() -> bool {
    std::env::var("SATURN_TRACE").is_ok_and(|v| v == "json")
}

/// Cancellation token + progress counters of one sweep, shared by handle.
#[derive(Default)]
pub struct SweepControl {
    /// Fire to stop the sweep at its next safe point.
    pub cancel: CancelToken,
    /// Scale-granular progress, readable while the sweep runs.
    pub progress: SweepProgress,
    /// Optional per-tile telemetry callback; `None` costs nothing.
    pub observer: Option<Arc<dyn SweepObserver>>,
}

impl fmt::Debug for SweepControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepControl")
            .field("cancel", &self.cancel)
            .field("progress", &self.progress)
            .field("observer", &self.observer.as_ref().map(|_| "Arc<dyn SweepObserver>"))
            .finish()
    }
}

impl SweepControl {
    /// A control in the initial state: token unfired, no progress.
    pub fn new() -> Self {
        Self::default()
    }

    /// A control with a telemetry observer attached from the start.
    pub fn with_observer(observer: Arc<dyn SweepObserver>) -> Self {
        Self { observer: Some(observer), ..Self::default() }
    }
}
