//! Out-of-band control surface of a running sweep: cooperative cancellation
//! plus coarse progress accounting, shared between the party that launched
//! the sweep (an analysis service, a CLI signal handler) and the workers
//! executing it.
//!
//! A [`SweepControl`] is handed to [`OccupancyMethod::try_run_on`] or
//! [`try_validation_sweep_on`]; firing its [`CancelToken`] makes the sweep
//! stop at the next `(scale, tile)` item boundary — and, inside a running
//! DP, within one [`CANCEL_STRIDE`](saturn_trips::CANCEL_STRIDE) of steps —
//! after which the entry point returns [`Cancelled`] and every partial
//! result is discarded. A control whose token never fires is pure overhead
//! of a few relaxed atomic reads per work item: it cannot change results,
//! which is what keeps execution knobs out of report bytes and cache
//! fingerprints (the knob-matrix invariant).
//!
//! [`OccupancyMethod::try_run_on`]: crate::OccupancyMethod::try_run_on
//! [`try_validation_sweep_on`]: crate::try_validation_sweep_on

use saturn_trips::CancelToken;
use std::sync::atomic::{AtomicU64, Ordering};

/// Progress of a sweep in whole *scales* (grid points fully analyzed over
/// all their tiles). Coarse on purpose: scales are the unit a client can
/// reason about (`scales_done/scales_total` in timeout error bodies), and
/// the counters are only touched once per scale, not per tile.
///
/// `total` is set when the sweep starts from the initial grid size and grows
/// as refinement rounds append scales, so `done == total` only at the very
/// end — a snapshot mid-run can show a total that later increases.
#[derive(Debug, Default)]
pub struct SweepProgress {
    done: AtomicU64,
    total: AtomicU64,
}

impl SweepProgress {
    /// `(done, total)` at this instant.
    pub fn snapshot(&self) -> (u64, u64) {
        (self.done.load(Ordering::Acquire), self.total.load(Ordering::Acquire))
    }

    /// Sets the expected scale count (used by submitters that know the grid
    /// size before the sweep starts; overwritten with the authoritative
    /// value when the sweep itself begins).
    pub fn set_total(&self, scales: u64) {
        self.total.store(scales, Ordering::Release);
    }

    /// Grows the expected scale count (refinement rounds).
    pub fn add_total(&self, scales: u64) {
        self.total.fetch_add(scales, Ordering::AcqRel);
    }

    /// Records `scales` more scales as fully analyzed.
    pub fn add_done(&self, scales: u64) {
        self.done.fetch_add(scales, Ordering::AcqRel);
    }
}

/// Cancellation token + progress counters of one sweep, shared by handle.
#[derive(Debug, Default)]
pub struct SweepControl {
    /// Fire to stop the sweep at its next safe point.
    pub cancel: CancelToken,
    /// Scale-granular progress, readable while the sweep runs.
    pub progress: SweepProgress,
}

impl SweepControl {
    /// A control in the initial state: token unfired, no progress.
    pub fn new() -> Self {
        Self::default()
    }
}
