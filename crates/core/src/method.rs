//! The occupancy method driver (Section 4 of the paper).

use crate::control::{SweepControl, TileSpan};
use crate::parallel::{auto_tile_cols, merge_sources, sweep_queue, WorkerPool};
use crate::report::OccupancyReport;
use crate::SweepGrid;
use rustc_hash::FxHashMap;
use saturn_distrib::{SelectionMetric, WeightedDist};
use saturn_linkstream::LinkStream;
use saturn_trips::{
    occupancy_histogram_tile_stats_in, Cancelled, DpOptions, EngineArena, EventView,
    OccupancyHistogram, TargetSet, Timeline,
};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Slot counts at which the Shannon-entropy score is always evaluated
/// (the paper discusses k ∈ {5, 10, 20, 100}).
pub const SHANNON_SLOTS: [usize; 4] = [5, 10, 20, 100];

/// How destinations are chosen for the trip computations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TargetSpec {
    /// Every node is a destination — the paper's exact method,
    /// `O(n²)` memory.
    #[default]
    All,
    /// A deterministic sample of destinations — bounds memory to
    /// `O(n · size)` for very large networks; the occupancy distribution is
    /// estimated over trips toward the sampled destinations.
    Sample {
        /// Number of destination nodes.
        size: u32,
        /// Sampling seed.
        seed: u64,
    },
}

impl TargetSpec {
    /// Builds the concrete target set for a stream with `n` nodes.
    pub fn build(&self, n: u32) -> TargetSet {
        match *self {
            TargetSpec::All => TargetSet::all(n),
            TargetSpec::Sample { size, seed } => TargetSet::sample(n, size, seed),
        }
    }
}

/// Whether per-scale occupancy distributions are retained in the report
/// (needed to plot the ICDs of Figures 3, 4 and 7; costs memory).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KeepPolicy {
    /// Drop distributions, keep only their scores (the default).
    #[default]
    ScoresOnly,
    /// Keep the full distribution of every swept scale.
    All,
}

/// Telemetry of the latest [`OccupancyMethod::try_refresh_on`] call:
/// how much of the sweep the session cache absorbed. Never feeds report
/// bytes or fingerprints — observability only.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct RefreshStats {
    /// Scales the refresh was asked to analyze.
    pub scales_total: u64,
    /// Scales whose cached histogram was served without any DP work
    /// (planned timeline field-for-field equal to the cached one).
    pub scales_reused: u64,
    /// Scales recomputed on a suffix-spliced timeline
    /// (`Timeline::spliced_from_view`).
    pub scales_respliced: u64,
    /// Scales recomputed on a scratch- or merge-built timeline
    /// (cache miss, or a dirty mark reaching window 0).
    pub scales_scratch: u64,
    /// `(scale, tile)` work items skipped by histogram reuse, under the
    /// full sweep's tile layout.
    pub tiles_skipped: u64,
    /// Windows re-scattered by splices, summed over respliced scales.
    pub suffix_windows_rebuilt: u64,
}

/// One cached scale of a [`SweepCache`]: the timeline the histogram was
/// computed from (the reuse witness) and the merged histogram itself.
#[derive(Clone, Debug)]
struct CachedScale {
    timeline: Arc<Timeline>,
    hist: OccupancyHistogram,
    epoch: u64,
}

/// Per-session sweep memory for [`OccupancyMethod::try_refresh_on`]: the
/// per-scale timelines and merged histograms of the last refresh, keyed by
/// window count `K`. An ingest session owns one cache per stream and feeds
/// every incremental re-analysis through it; the cache never changes report
/// bytes — it only decides how much work a refresh can skip.
///
/// Entries are epoch-stamped: every refresh bumps the epoch, touches the
/// entries of the scales it analyzed, and on success prunes the rest (a
/// scale that left the grid would otherwise pin its timeline + histogram
/// forever). A refresh cancelled mid-way may leave the entries of its
/// completed rounds behind (a refine round updates the cache before the
/// next round runs); that is safe because an entry always pairs a timeline
/// with the histogram computed from exactly that timeline, and because the
/// caller keeps its dirty mark until a refresh *succeeds* — the mark then
/// still covers every event appended since the last successful refresh, so
/// the next splice stays conservative (and conservative splices are always
/// correct; see the timeline module's "Splice invariants").
///
/// The cache also remembers the identity (content digest + event count) of
/// the newest stream a refresh ran against. [`OccupancyMethod::try_refresh_on`]
/// uses it to reject snapshots that cannot be append-consistent with the
/// cached state — e.g. a stale snapshot racing a newer refresh of the same
/// session — by falling back to a scratch sweep instead of reusing entries
/// built from events the snapshot does not contain.
#[derive(Clone, Debug, Default)]
pub struct SweepCache {
    /// Target spec the cached histograms were computed under; a change
    /// invalidates everything (histograms are per-target-set).
    targets: Option<TargetSpec>,
    scales: FxHashMap<u64, CachedScale>,
    epoch: u64,
    /// `(stream_digest, event count)` of the newest stream a refresh ran
    /// against — stamped *before* sweeping, so even after a cancellation it
    /// upper-bounds the events any surviving entry may contain.
    stamp: Option<(u128, u64)>,
    /// Telemetry of the latest refresh (reset at the start of each).
    pub stats: RefreshStats,
}

impl SweepCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached scales.
    pub fn len(&self) -> usize {
        self.scales.len()
    }

    /// Whether the cache holds no scale.
    pub fn is_empty(&self) -> bool {
        self.scales.is_empty()
    }
}

/// All Section 7 uniformity scores of one occupancy distribution, computed
/// together (each is cheap once the distribution is materialized).
#[derive(Clone, Debug, Serialize)]
pub struct UniformityScores {
    /// M-K proximity `1/2 - dist_MK` (the paper's reference method).
    pub mk_proximity: f64,
    /// Weighted standard deviation.
    pub std_dev: f64,
    /// Variation coefficient `σ/µ`.
    pub variation_coefficient: f64,
    /// Shannon entropy at each slot count of [`SHANNON_SLOTS`].
    pub shannon: Vec<(usize, f64)>,
    /// Cumulative residual entropy.
    pub cre: f64,
}

impl UniformityScores {
    /// Scores `dist` under every metric.
    pub fn of(dist: &WeightedDist) -> Self {
        UniformityScores {
            mk_proximity: saturn_distrib::mk_proximity(dist),
            std_dev: saturn_distrib::std_dev(dist),
            variation_coefficient: saturn_distrib::variation_coefficient(dist),
            shannon: SHANNON_SLOTS
                .iter()
                .map(|&s| (s, saturn_distrib::shannon_entropy(dist, s)))
                .collect(),
            cre: saturn_distrib::cumulative_residual_entropy(dist),
        }
    }

    /// The score under `metric`. Shannon slot counts outside
    /// [`SHANNON_SLOTS`] return `NaN`.
    pub fn get(&self, metric: SelectionMetric) -> f64 {
        match metric {
            SelectionMetric::MkProximity => self.mk_proximity,
            SelectionMetric::StdDev => self.std_dev,
            SelectionMetric::VariationCoefficient => self.variation_coefficient,
            SelectionMetric::ShannonEntropy { slots } => self
                .shannon
                .iter()
                .find(|&&(s, _)| s == slots)
                .map(|&(_, v)| v)
                .unwrap_or(f64::NAN),
            SelectionMetric::Cre => self.cre,
        }
    }
}

/// The analysis of one aggregation scale.
#[derive(Clone, Debug, Serialize)]
pub struct DeltaResult {
    /// Window count `K`.
    pub k: u64,
    /// Window length `Δ = T/K` in ticks.
    pub delta_ticks: f64,
    /// Number of minimal trips of `G_Δ`.
    pub trips: u64,
    /// Number of distinct occupancy rates.
    pub distinct_rates: usize,
    /// Mean occupancy rate.
    pub mean_rate: f64,
    /// Fraction of trips with occupancy rate exactly 1.
    pub fraction_at_one: f64,
    /// All uniformity scores.
    pub scores: UniformityScores,
    /// The full distribution, under [`KeepPolicy::All`].
    pub distribution: Option<WeightedDist>,
}

/// Configurable driver for the occupancy method.
///
/// The defaults reproduce the paper's setting: exact all-pairs trips,
/// geometric `Δ` grid from the tick resolution to `T`, M-K proximity
/// selection, local refinement around the coarse maximum, and all available
/// cores.
#[derive(Clone, Debug, Serialize)]
pub struct OccupancyMethod {
    grid: SweepGrid,
    metric: SelectionMetric,
    targets: TargetSpec,
    threads: usize,
    delta_min: i64,
    keep: KeepPolicy,
    refine_rounds: usize,
    refine_points: usize,
    tile: usize,
    no_delta: bool,
    no_incremental: bool,
}

impl Default for OccupancyMethod {
    fn default() -> Self {
        OccupancyMethod {
            grid: SweepGrid::default(),
            metric: SelectionMetric::MkProximity,
            targets: TargetSpec::All,
            threads: 0,
            delta_min: 1,
            keep: KeepPolicy::ScoresOnly,
            refine_rounds: 2,
            refine_points: 8,
            tile: 0,
            no_delta: false,
            no_incremental: false,
        }
    }
}

impl OccupancyMethod {
    /// Creates a driver with the paper's defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the `Δ` grid strategy.
    pub fn grid(mut self, grid: SweepGrid) -> Self {
        self.grid = grid;
        self
    }

    /// Sets the selection metric (default: M-K proximity).
    pub fn metric(mut self, metric: SelectionMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the destination policy (default: all nodes).
    pub fn targets(mut self, targets: TargetSpec) -> Self {
        self.targets = targets;
        self
    }

    /// Sets the worker thread count (0 = all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the smallest aggregation period in ticks (default 1, the
    /// resolution of integer timestamps).
    pub fn delta_min(mut self, ticks: i64) -> Self {
        self.delta_min = ticks.max(1);
        self
    }

    /// Sets whether full distributions are kept in the report.
    pub fn keep(mut self, keep: KeepPolicy) -> Self {
        self.keep = keep;
        self
    }

    /// Configures local refinement around the coarse-grid maximum:
    /// `rounds` passes inserting up to `points` scales between the current
    /// maximum's neighbors. `rounds = 0` disables refinement.
    pub fn refine(mut self, rounds: usize, points: usize) -> Self {
        self.refine_rounds = rounds;
        self.refine_points = points;
        self
    }

    /// Sets the target-tile width in columns (default 0 = automatic).
    /// Tiling splits each scale's DP into independent column ranges so
    /// single scales and narrow refinement rounds can use the whole pool;
    /// reports are bit-identical for every tile width (per-tile histograms
    /// merge exactly, in deterministic order), so this is purely an
    /// execution knob — it does not enter content fingerprints.
    pub fn tile(mut self, tile: usize) -> Self {
        self.tile = tile;
        self
    }

    /// Disables the DP engine's delta propagation (change-driven offers +
    /// bitmap dirty sets; see `saturn_trips::dp` module docs). Results are
    /// bit-identical either way, so — exactly like [`tile`](Self::tile) —
    /// this is a pure execution knob for ablation benchmarking and never
    /// enters content fingerprints.
    pub fn no_delta_propagation(mut self, no_delta: bool) -> Self {
        self.no_delta = no_delta;
        self
    }

    /// Disables incremental timeline construction: every scale's timeline is
    /// built from scratch off the shared event view instead of merging
    /// adjacent windows of an already-built divisor-compatible finer scale
    /// (`Timeline::aggregated_by_merge`; see the timeline module's "Merge
    /// invariants"). Merged timelines are field-for-field identical to
    /// scratch ones, so — exactly like [`tile`](Self::tile) and
    /// [`no_delta_propagation`](Self::no_delta_propagation) — this is a
    /// pure execution knob for ablation benchmarking and never enters
    /// content fingerprints.
    pub fn no_incremental_timeline(mut self, no_incremental: bool) -> Self {
        self.no_incremental = no_incremental;
        self
    }

    /// Scores one scale's merged histogram.
    fn delta_result(&self, span: i64, k: u64, hist: &OccupancyHistogram) -> DeltaResult {
        let dist = WeightedDist::from_pairs(hist.sorted_rates());
        DeltaResult {
            k,
            delta_ticks: span as f64 / k as f64,
            trips: hist.total_trips(),
            distinct_rates: hist.distinct_rates(),
            mean_rate: hist.mean(),
            fraction_at_one: hist.fraction_at_one(),
            scores: UniformityScores::of(&dist),
            distribution: matches!(self.keep, KeepPolicy::All).then_some(dist),
        }
    }

    /// Analyzes `ks` scales on `pool`: builds the `(scale, tile)` queue
    /// (finest scales first), fans it across the workers, and merges the
    /// per-tile histograms of each scale in ascending tile order — so the
    /// resulting [`DeltaResult`]s are bit-identical for every thread count
    /// and tile width.
    ///
    /// Timelines are built **incrementally** where scales allow it: the
    /// merge plan ([`merge_sources`]) pairs each scale with the nearest
    /// finer scale whose window count it divides, and that scale's timeline
    /// is then derived by adjacent-window merging
    /// (`Timeline::aggregated_by_merge` — field-for-field identical to a
    /// scratch build, so reports and cache fingerprints are untouched)
    /// instead of re-scattering the full event view. Each scale owns one
    /// lazily built `Arc<Timeline>` slot shared by its tiles *and* its
    /// merge dependents; the slot's refcount (`tiles + dependents`) releases
    /// the handle as soon as the last consumer is done, so — exactly as in
    /// the per-scale layout — only the scales currently in flight (plus
    /// pending merge sources) hold timelines. Chained builds follow the
    /// queue's finest-first order: a merge source always precedes its
    /// dependents, and the slot mutexes are only ever taken in descending
    /// scale order (coarser scales wait on finer ones), so the lazy
    /// cross-scale builds cannot deadlock. `no_incremental` empties the
    /// plan, restoring per-scale scratch builds for ablation.
    ///
    /// Cancellation (`ctl.cancel`): workers poll the token before each queue
    /// item — an already-fired token turns the remaining items into no-ops —
    /// and thread it into the DP, which polls at a coarse step stride. A
    /// fired token makes this return [`Cancelled`] and every partial
    /// histogram is dropped. Progress (`ctl.progress`) advances by one when
    /// a scale's last tile completes.
    #[allow(clippy::too_many_arguments)] // internal plumbing of one sweep
    fn sweep_scales(
        &self,
        pool: &mut WorkerPool,
        arenas: &[Mutex<EngineArena>],
        view: &EventView,
        span: i64,
        targets: &TargetSet,
        ks: &[u64],
        ctl: &SweepControl,
    ) -> Result<Vec<DeltaResult>, Cancelled> {
        let hists = self.sweep_histograms(pool, arenas, view, targets, ks, ctl, &[])?;
        Ok(ks.iter().zip(&hists).map(|(&k, hist)| self.delta_result(span, k, hist)).collect())
    }

    /// The fan-out core of [`sweep_scales`](Self::sweep_scales), returning
    /// each scale's merged histogram instead of scored results — the refresh
    /// path ([`try_refresh_on`](Self::try_refresh_on)) stores these in its
    /// session cache. `prebuilt` optionally seeds per-scale timelines
    /// (empty = build every scale lazily): a seeded scale skips the lazy
    /// build entirely and is excluded from the merge plan, so spliced
    /// timelines flow in without disturbing the merge-chain machinery.
    #[allow(clippy::too_many_arguments)] // internal plumbing of one sweep
    fn sweep_histograms(
        &self,
        pool: &mut WorkerPool,
        arenas: &[Mutex<EngineArena>],
        view: &EventView,
        targets: &TargetSet,
        ks: &[u64],
        ctl: &SweepControl,
        prebuilt: &[Option<Arc<Timeline>>],
    ) -> Result<Vec<OccupancyHistogram>, Cancelled> {
        let ncols = targets.len();
        let tile_cols = if self.tile == 0 {
            auto_tile_cols(ncols, ks.len(), pool.parallelism())
        } else {
            self.tile.max(1)
        };
        let items = sweep_queue(ks, &targets.tile_ranges(tile_cols));
        let tiles_in_scale = items.first().map_or(1, |item| item.tiles_in_scale);

        // one options value threads every execution knob end to end: the
        // engines consume the delta flag, this scheduler consumes the
        // incremental-timeline flag (an empty merge plan = scratch builds)
        let dp_options = DpOptions {
            no_delta_propagation: self.no_delta,
            no_incremental_timeline: self.no_incremental,
            ..Default::default()
        };
        let mut sources: Vec<Option<usize>> = if dp_options.no_incremental_timeline {
            vec![None; ks.len()]
        } else {
            merge_sources(ks)
        };
        // a seeded scale never builds, so it must not count as a merge
        // dependent of its planned source (the release bookkeeping would
        // otherwise never reach zero there)
        for (i, source) in sources.iter_mut().enumerate() {
            if prebuilt.get(i).is_some_and(Option::is_some) {
                *source = None;
            }
        }
        let mut dependents = vec![0usize; ks.len()];
        for &j in sources.iter().flatten() {
            dependents[j] += 1;
        }

        struct SharedScale {
            timeline: Mutex<Option<Arc<Timeline>>>,
            /// Consumers (tiles + merge dependents) not yet finished; the
            /// decrement to 0 clears `timeline`.
            remaining: AtomicUsize,
        }
        let shared: Vec<SharedScale> = dependents
            .iter()
            .enumerate()
            .map(|(i, &deps)| SharedScale {
                timeline: Mutex::new(prebuilt.get(i).cloned().flatten()),
                remaining: AtomicUsize::new(tiles_in_scale + deps),
            })
            .collect();

        /// Drops one consumer reference to scale `i`'s shared timeline,
        /// clearing the slot on the last one so the allocation frees as
        /// soon as the final in-flight clone drops, instead of living
        /// until the sweep returns.
        fn release(shared: &[SharedScale], i: usize) {
            if shared[i].remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                *shared[i].timeline.lock().expect("timeline slot poisoned") = None;
            }
        }

        /// Scale `i`'s timeline, building it on first demand — by merging
        /// down from its planned source scale (recursing at most the chain
        /// length, always toward smaller indices) or from scratch off the
        /// shared view. Holding slot `i`'s lock across the build makes
        /// concurrent requesters wait for the one build instead of
        /// duplicating it.
        fn obtain(
            shared: &[SharedScale],
            sources: &[Option<usize>],
            ks: &[u64],
            view: &EventView,
            i: usize,
        ) -> Arc<Timeline> {
            let mut slot = shared[i].timeline.lock().expect("timeline slot poisoned");
            if let Some(timeline) = slot.as_ref() {
                return Arc::clone(timeline);
            }
            let built = Arc::new(match sources[i] {
                Some(j) => {
                    let fine = obtain(shared, sources, ks, view, j);
                    let merged = fine.aggregated_by_merge(ks[i]);
                    drop(fine);
                    release(shared, j);
                    merged
                }
                None => Timeline::aggregated_from_view(view, ks[i]),
            });
            *slot = Some(Arc::clone(&built));
            built
        }

        // One countdown per scale; the worker that completes a scale's last
        // tile advances the coarse progress counter.
        let tiles_left: Vec<AtomicUsize> =
            (0..ks.len()).map(|_| AtomicUsize::new(tiles_in_scale)).collect();

        let parts: Vec<OccupancyHistogram> = pool.map(&items, |wid, item| {
            // Every slot must be written, so a cancelled item still returns
            // a (discarded) histogram — it just skips the work.
            if ctl.cancel.is_cancelled() {
                return OccupancyHistogram::new();
            }
            let mut arena = arenas[wid].lock().expect("arena poisoned");
            let timeline = obtain(&shared, &sources, ks, view, item.scale);
            let started = Instant::now();
            let (hist, stats) = occupancy_histogram_tile_stats_in(
                &mut arena,
                &timeline,
                targets,
                item.col_start,
                item.col_len as usize,
                dp_options,
                Some(&ctl.cancel),
            );
            let seconds = started.elapsed().as_secs_f64();
            drop(timeline);
            release(&shared, item.scale);
            // A token fired mid-DP leaves `hist` partial; the guard keeps a
            // partial tile from counting its scale as done (and its garbage
            // stats from reaching the observer).
            if !ctl.cancel.is_cancelled() {
                let last_tile_of_scale =
                    tiles_left[item.scale].fetch_sub(1, Ordering::AcqRel) == 1;
                if last_tile_of_scale {
                    ctl.progress.add_done(1);
                }
                if let Some(observer) = &ctl.observer {
                    observer.tile_done(&TileSpan {
                        k: ks[item.scale],
                        col_start: item.col_start,
                        col_len: item.col_len,
                        seconds,
                        trips: stats.trips,
                        traversals: stats.traversals,
                        chain_offers: stats.chain_offers,
                        snap_entries: stats.snap_entries,
                        degree1_steps: stats.degree1_steps,
                        last_tile_of_scale,
                    });
                }
            }
            hist
        });
        if ctl.cancel.is_cancelled() {
            return Err(Cancelled);
        }
        // Deterministic merge: items are sorted by (k desc, tile asc), so a
        // single in-order pass merges each scale's tiles in ascending tile
        // order no matter which worker computed what.
        let mut merged: Vec<OccupancyHistogram> =
            (0..ks.len()).map(|_| OccupancyHistogram::new()).collect();
        for (item, hist) in items.iter().zip(&parts) {
            merged[item.scale].merge(hist);
        }
        Ok(merged)
    }

    /// Runs the method: sweeps the grid, optionally refines around the
    /// maximum, and returns the full report. The saturation scale is
    /// [`OccupancyReport::gamma`].
    ///
    /// Execution layout: one [`WorkerPool`] owns the worker threads for the
    /// coarse sweep *and* every refinement round; each worker keeps an
    /// [`EngineArena`] for the pool's lifetime (DP tables allocated once,
    /// epoch-reset per scale), all scales aggregate from one shared
    /// [`EventView`] sorted once up front, and work is queued as
    /// `(scale, target tile)` items (finest scales first) so that even a
    /// single scale — or a narrow refinement round — fans out across the
    /// whole pool.
    pub fn run(&self, stream: &LinkStream) -> OccupancyReport {
        // no longer capped by the grid size: target tiling feeds pools wider
        // than the scale count
        let mut pool = WorkerPool::new(self.threads);
        self.run_on(stream, &mut pool)
    }

    /// [`run`](OccupancyMethod::run) on a caller-owned pool. The analysis
    /// service keeps one [`WorkerPool`] alive across requests and dispatches
    /// every sweep onto it, so worker threads are spawned once per process
    /// rather than once per request; `self.threads` is ignored here — the
    /// pool's parallelism governs.
    pub fn run_on(&self, stream: &LinkStream, pool: &mut WorkerPool) -> OccupancyReport {
        self.try_run_on(stream, pool, &SweepControl::new())
            .expect("a sweep whose token never fires cannot be cancelled")
    }

    /// [`run_on`](OccupancyMethod::run_on) under a caller-held
    /// [`SweepControl`]: firing `ctl.cancel` stops the sweep at the next
    /// `(scale, tile)` boundary (or within one DP stride inside a tile) and
    /// returns [`Cancelled`]; `ctl.progress` tracks completed scales while
    /// the sweep runs. With a never-fired token the report is bit-identical
    /// to [`run_on`](OccupancyMethod::run_on) — cancellation is an execution
    /// knob and never enters report bytes or cache fingerprints.
    pub fn try_run_on(
        &self,
        stream: &LinkStream,
        pool: &mut WorkerPool,
        ctl: &SweepControl,
    ) -> Result<OccupancyReport, Cancelled> {
        let targets = self.targets.build(stream.node_count() as u32);
        let view = EventView::new(stream);
        let span = stream.span();
        let mut ks = self.grid.k_values(stream, self.delta_min);
        ctl.progress.set_total(ks.len() as u64);

        // One arena per worker id; a worker only ever locks its own slot, so
        // the mutexes are uncontended — they exist to satisfy `Sync`.
        let arenas: Vec<Mutex<EngineArena>> =
            (0..pool.parallelism()).map(|_| Mutex::new(EngineArena::new())).collect();

        let mut results: Vec<DeltaResult> =
            self.sweep_scales(pool, &arenas, &view, span, &targets, &ks, ctl)?;

        for _ in 0..self.refine_rounds {
            // current argmax under the selection metric
            let Some(best_pos) = argmax(&results, self.metric) else { break };
            let best_k = results[best_pos].k;
            // neighbors of best_k in the sorted (descending) k list
            let pos = ks.binary_search_by(|a| best_k.cmp(a)).unwrap_or_else(|p| p);
            let k_above = if pos > 0 { ks[pos - 1] } else { best_k }; // finer (larger K)
            let k_below = ks.get(pos + 1).copied().unwrap_or(best_k); // coarser
            let mut extra = Vec::new();
            if best_k < k_above {
                extra.extend(SweepGrid::refine_between(best_k, k_above, self.refine_points));
            }
            if k_below < best_k {
                extra.extend(SweepGrid::refine_between(k_below, best_k, self.refine_points));
            }
            extra.retain(|k| !ks.contains(k));
            extra.sort_unstable_by(|a, b| b.cmp(a));
            extra.dedup();
            if extra.is_empty() {
                break;
            }
            ctl.progress.add_total(extra.len() as u64);
            let new_results: Vec<DeltaResult> =
                self.sweep_scales(pool, &arenas, &view, span, &targets, &extra, ctl)?;
            results.extend(new_results);
            ks.extend(extra);
            ks.sort_unstable_by(|a, b| b.cmp(a));
        }

        // Δ ascending (K descending)
        results.sort_unstable_by_key(|r| std::cmp::Reverse(r.k));
        Ok(OccupancyReport::new(self.metric, results))
    }

    /// [`try_run_on`](Self::try_run_on) through a per-session [`SweepCache`]:
    /// the incremental re-analysis primitive of ingest sessions.
    ///
    /// `dirty_from` is the earliest timestamp appended to `stream` since the
    /// cache's last *successful* refresh (`None` = nothing appended). Each
    /// grid scale then takes the cheapest sound path:
    ///
    /// * cache hit, nothing appended — the cached timeline is the current
    ///   one; its histogram is served with zero DP work;
    /// * cache hit, dirty mark — the cached timeline is suffix-spliced from
    ///   the dirty window on (`Timeline::spliced_from_view`); if the splice
    ///   comes back field-for-field identical (appends deduplicated away at
    ///   this scale), the cached histogram is served, otherwise the scale is
    ///   recomputed on the spliced timeline;
    /// * cache miss — scratch or merge build, exactly as a cold sweep.
    ///
    /// Reports are **byte-identical** to a scratch [`try_run_on`] over the
    /// same stream — the cache and the dirty mark are pure execution state
    /// (the service hard-asserts this in its differential tests and the
    /// bench). Refinement rounds run through the cache too, so the refined
    /// scales of consecutive refreshes reuse each other. On success the
    /// cache holds exactly the scales of this refresh and `cache.stats`
    /// describes the work split. A cancelled refresh may leave the entries
    /// of its completed rounds in the cache — safe, because every entry
    /// pairs a timeline with the histogram computed from it — but the
    /// caller must keep its dirty mark until a refresh *succeeds*, so the
    /// mark always covers every event appended since the last successful
    /// refresh and the next splice stays conservative.
    ///
    /// A conservative (too early) `dirty_from` is always correct — it only
    /// shrinks the reusable prefix. Callers must pass a pinned-period
    /// stream: the study period may not move between refreshes feeding one
    /// cache (ingest sessions pin it at creation).
    ///
    /// The cache is stamped with the identity of the newest stream a
    /// refresh ran against. If `stream` cannot be an append-only extension
    /// consistent with that stamp and `dirty_from` — same event count but
    /// different digest, *fewer* events (a stale snapshot that raced a
    /// newer refresh of the same cache), or a changed digest with no dirty
    /// mark — the entries are discarded and every scale is computed from
    /// scratch: reusing them could serve histograms containing events this
    /// stream does not have. The report stays correct either way; only the
    /// amount of reuse changes.
    pub fn try_refresh_on(
        &self,
        stream: &LinkStream,
        pool: &mut WorkerPool,
        ctl: &SweepControl,
        cache: &mut SweepCache,
        dirty_from: Option<i64>,
    ) -> Result<OccupancyReport, Cancelled> {
        if cache.targets != Some(self.targets) {
            // histograms are per-target-set; a changed spec voids them all
            cache.scales.clear();
            cache.targets = Some(self.targets);
        }
        let identity =
            (crate::fingerprint::stream_digest(stream), stream.events().len() as u64);
        if let Some((digest, events)) = cache.stamp {
            // the stream must be append-consistent with the cached state:
            // unchanged, or strictly grown with a dirty mark covering the
            // growth. Anything else (a stale snapshot racing a newer
            // refresh, a rewritten stream, a claimed-clean change) would
            // let reuse serve bytes for a different stream.
            let consistent =
                identity.0 == digest || (dirty_from.is_some() && identity.1 > events);
            if !consistent {
                cache.scales.clear();
            }
        }
        // re-stamp *before* sweeping: entries this refresh touches are
        // built from `stream`, and a cancellation can leave them behind —
        // the stamp must stay an upper bound on what the entries may
        // contain, or a stale snapshot matching the old stamp could reuse
        // newer entries
        cache.stamp = Some(identity);
        cache.epoch += 1;
        cache.stats = RefreshStats::default();

        let targets = self.targets.build(stream.node_count() as u32);
        let view = EventView::new(stream);
        let span = stream.span();
        let mut ks = self.grid.k_values(stream, self.delta_min);
        ctl.progress.set_total(ks.len() as u64);

        let arenas: Vec<Mutex<EngineArena>> =
            (0..pool.parallelism()).map(|_| Mutex::new(EngineArena::new())).collect();

        let mut results = self.refresh_scales(
            stream, pool, &arenas, &view, span, &targets, &ks, ctl, cache, dirty_from,
        )?;

        for _ in 0..self.refine_rounds {
            let Some(best_pos) = argmax(&results, self.metric) else { break };
            let best_k = results[best_pos].k;
            let pos = ks.binary_search_by(|a| best_k.cmp(a)).unwrap_or_else(|p| p);
            let k_above = if pos > 0 { ks[pos - 1] } else { best_k };
            let k_below = ks.get(pos + 1).copied().unwrap_or(best_k);
            let mut extra = Vec::new();
            if best_k < k_above {
                extra.extend(SweepGrid::refine_between(best_k, k_above, self.refine_points));
            }
            if k_below < best_k {
                extra.extend(SweepGrid::refine_between(k_below, best_k, self.refine_points));
            }
            extra.retain(|k| !ks.contains(k));
            extra.sort_unstable_by(|a, b| b.cmp(a));
            extra.dedup();
            if extra.is_empty() {
                break;
            }
            ctl.progress.add_total(extra.len() as u64);
            let new_results = self.refresh_scales(
                stream, pool, &arenas, &view, span, &targets, &extra, ctl, cache, dirty_from,
            )?;
            results.extend(new_results);
            ks.extend(extra);
            ks.sort_unstable_by(|a, b| b.cmp(a));
        }

        results.sort_unstable_by_key(|r| std::cmp::Reverse(r.k));
        // scales that left the grid since the last refresh would otherwise
        // pin their timeline + histogram forever
        let epoch = cache.epoch;
        cache.scales.retain(|_, entry| entry.epoch == epoch);
        Ok(OccupancyReport::new(self.metric, results))
    }

    /// One cache-aware sweep over `ks` (sorted descending): plans every
    /// scale's timeline eagerly (reuse / splice / merge / scratch), serves
    /// field-identical cache hits from their stored histograms, fans the
    /// rest out through [`sweep_histograms`](Self::sweep_histograms) with
    /// the planned timelines pre-seeded, and folds the results back into
    /// the cache.
    #[allow(clippy::too_many_arguments)] // internal plumbing of one refresh
    fn refresh_scales(
        &self,
        stream: &LinkStream,
        pool: &mut WorkerPool,
        arenas: &[Mutex<EngineArena>],
        view: &EventView,
        span: i64,
        targets: &TargetSet,
        ks: &[u64],
        ctl: &SweepControl,
        cache: &mut SweepCache,
        dirty_from: Option<i64>,
    ) -> Result<Vec<DeltaResult>, Cancelled> {
        cache.stats.scales_total += ks.len() as u64;
        // the full sweep's tile layout, for the skip accounting
        let ncols = targets.len();
        let tile_cols = if self.tile == 0 {
            auto_tile_cols(ncols, ks.len(), pool.parallelism())
        } else {
            self.tile.max(1)
        };
        let tiles_per_scale = targets.tile_ranges(tile_cols).len();

        // Plan finest-first so merge sources precede their dependents
        // (`merge_sources` points each scale at an earlier index).
        let sources: Vec<Option<usize>> =
            if self.no_incremental { vec![None; ks.len()] } else { merge_sources(ks) };
        let mut planned: Vec<Arc<Timeline>> = Vec::with_capacity(ks.len());
        let mut reused: Vec<bool> = Vec::with_capacity(ks.len());
        for (i, &k) in ks.iter().enumerate() {
            let cached = cache.scales.get(&k);
            let mut spliced = false;
            let timeline = match (cached, dirty_from) {
                (Some(entry), None) => Arc::clone(&entry.timeline),
                (Some(entry), Some(t0)) => {
                    let w = stream
                        .partition(k)
                        .expect("grid window counts are valid for the stream")
                        .index(saturn_linkstream::Time::new(t0))
                        as u32;
                    spliced = w > 0;
                    if spliced {
                        cache.stats.suffix_windows_rebuilt += k - w as u64;
                    }
                    Arc::new(entry.timeline.spliced_from_view(view, w))
                }
                (None, _) => Arc::new(match sources[i] {
                    Some(j) => planned[j].aggregated_by_merge(k),
                    None => Timeline::aggregated_from_view(view, k),
                }),
            };
            // deep-equality reuse gate: a planned timeline field-for-field
            // equal to the cached one means the cached histogram is still
            // exact (appends deduplicated away at this scale)
            let reuse = cached.is_some_and(|entry| {
                Arc::ptr_eq(&entry.timeline, &timeline) || *entry.timeline == *timeline
            });
            if reuse {
                cache.stats.scales_reused += 1;
                cache.stats.tiles_skipped += tiles_per_scale as u64;
            } else if spliced {
                cache.stats.scales_respliced += 1;
            } else {
                cache.stats.scales_scratch += 1;
            }
            reused.push(reuse);
            planned.push(timeline);
        }

        // reused scales complete instantly; the rest fan out pre-seeded
        let compute: Vec<usize> = (0..ks.len()).filter(|&i| !reused[i]).collect();
        ctl.progress.add_done((ks.len() - compute.len()) as u64);
        let hists = if compute.is_empty() {
            Vec::new()
        } else {
            let compute_ks: Vec<u64> = compute.iter().map(|&i| ks[i]).collect();
            let seeds: Vec<Option<Arc<Timeline>>> =
                compute.iter().map(|&i| Some(Arc::clone(&planned[i]))).collect();
            self.sweep_histograms(pool, arenas, view, targets, &compute_ks, ctl, &seeds)?
        };

        let mut hists = hists.into_iter();
        let mut results = Vec::with_capacity(ks.len());
        for (i, &k) in ks.iter().enumerate() {
            if reused[i] {
                let entry = cache.scales.get_mut(&k).expect("reused scales are cached");
                entry.epoch = cache.epoch;
                results.push(self.delta_result(span, k, &entry.hist));
            } else {
                let hist = hists.next().expect("one histogram per computed scale");
                results.push(self.delta_result(span, k, &hist));
                let timeline = Arc::clone(&planned[i]);
                cache.scales.insert(k, CachedScale { timeline, hist, epoch: cache.epoch });
            }
        }
        Ok(results)
    }
}

/// Index of the maximum finite score under `metric`, ties resolved toward
/// the smaller `Δ` (= larger `K`), the more conservative scale. One pass, no
/// allocation — this runs once per refinement round.
pub(crate) fn argmax(results: &[DeltaResult], metric: SelectionMetric) -> Option<usize> {
    let mut best: Option<(usize, f64, u64)> = None;
    for (i, r) in results.iter().enumerate() {
        let s = r.scores.get(metric);
        if !s.is_finite() {
            continue;
        }
        let better = match best {
            None => true,
            Some((_, bs, bk)) => s > bs || (s == bs && r.k > bk),
        };
        if better {
            best = Some((i, s, r.k));
        }
    }
    best.map(|(i, ..)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use saturn_linkstream::{Directedness, LinkStreamBuilder};

    /// A stream with one link every `gap` ticks along a ring.
    fn ring_stream(n: u32, links: usize, gap: i64) -> LinkStream {
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, n);
        for i in 0..links {
            let u = (i as u32) % n;
            b.add_indexed(u, (u + 1) % n, i as i64 * gap);
        }
        b.build().unwrap()
    }

    #[test]
    fn run_produces_sorted_results_and_gamma() {
        let s = ring_stream(8, 80, 7);
        let report = OccupancyMethod::new()
            .grid(SweepGrid::Geometric { points: 16 })
            .threads(2)
            .refine(1, 4)
            .run(&s);
        let deltas: Vec<f64> = report.results().iter().map(|r| r.delta_ticks).collect();
        assert!(deltas.windows(2).all(|w| w[0] < w[1]), "Δ ascending");
        let gamma = report.gamma().expect("gamma exists");
        assert!(gamma.delta_ticks >= 1.0);
        assert!(gamma.score.is_finite());
        // gamma is the max of the curve
        for r in report.results() {
            assert!(r.scores.mk_proximity <= gamma.score + 1e-12);
        }
    }

    #[test]
    fn extreme_scales_have_extreme_distributions() {
        let s = ring_stream(6, 120, 13);
        let report = OccupancyMethod::new()
            .grid(SweepGrid::ExplicitK(vec![1, s.span() as u64]))
            .threads(1)
            .refine(0, 0)
            .keep(KeepPolicy::All)
            .run(&s);
        let results = report.results();
        // Δ = T (K = 1): every trip has rate 1
        let coarse = results.last().unwrap();
        assert_eq!(coarse.k, 1);
        assert_eq!(coarse.fraction_at_one, 1.0);
        // Δ = 1 tick: low occupancy dominates; mean rate well below 1
        let fine = results.first().unwrap();
        assert!(fine.mean_rate < coarse.mean_rate);
        // both kept distributions present
        assert!(fine.distribution.is_some() && coarse.distribution.is_some());
    }

    #[test]
    fn sampled_targets_run() {
        let s = ring_stream(10, 60, 11);
        let report = OccupancyMethod::new()
            .grid(SweepGrid::Geometric { points: 8 })
            .targets(TargetSpec::Sample { size: 4, seed: 7 })
            .threads(1)
            .refine(0, 0)
            .run(&s);
        assert!(report.gamma().is_some());
        assert!(report.results().iter().all(|r| r.trips > 0));
    }

    #[test]
    fn refinement_adds_scales_around_maximum() {
        let s = ring_stream(8, 80, 7);
        let coarse = OccupancyMethod::new()
            .grid(SweepGrid::Geometric { points: 8 })
            .threads(1)
            .refine(0, 0)
            .run(&s);
        let refined = OccupancyMethod::new()
            .grid(SweepGrid::Geometric { points: 8 })
            .threads(1)
            .refine(2, 6)
            .run(&s);
        assert!(refined.results().len() > coarse.results().len());
        // refinement can only improve (or keep) the best score
        assert!(refined.gamma().unwrap().score >= coarse.gamma().unwrap().score - 1e-12);
    }

    #[test]
    fn run_on_shared_pool_matches_run() {
        use crate::parallel::WorkerPool;
        let s = ring_stream(8, 80, 7);
        let method =
            OccupancyMethod::new().grid(SweepGrid::Geometric { points: 10 }).refine(1, 4);
        let baseline = method.clone().threads(2).run(&s);
        let mut pool = WorkerPool::new(2);
        // the same pool serves consecutive analyses, as in the service
        for _ in 0..2 {
            let shared = method.run_on(&s, &mut pool);
            assert_eq!(shared.results().len(), baseline.results().len());
            for (x, y) in shared.results().iter().zip(baseline.results()) {
                assert_eq!(x.k, y.k);
                assert_eq!(x.trips, y.trips);
                assert_eq!(x.scores.mk_proximity.to_bits(), y.scores.mk_proximity.to_bits());
            }
        }
    }

    #[test]
    fn tiled_sweeps_are_bit_identical_to_untiled() {
        let s = ring_stream(9, 90, 6);
        let reference = OccupancyMethod::new()
            .grid(SweepGrid::Geometric { points: 10 })
            .threads(1)
            .refine(1, 4)
            .tile(usize::MAX) // explicit untiled
            .run(&s);
        let ref_json = reference.to_json();
        for tile in [1usize, 3, 4, 9, 0] {
            for threads in [1usize, 3] {
                let tiled = OccupancyMethod::new()
                    .grid(SweepGrid::Geometric { points: 10 })
                    .threads(threads)
                    .refine(1, 4)
                    .tile(tile)
                    .run(&s);
                assert_eq!(
                    tiled.to_json(),
                    ref_json,
                    "tile={tile} threads={threads} must not change the report"
                );
            }
        }
    }

    #[test]
    fn no_delta_propagation_is_bit_identical() {
        let s = ring_stream(9, 90, 6);
        let with_delta = OccupancyMethod::new()
            .grid(SweepGrid::Geometric { points: 10 })
            .threads(2)
            .refine(1, 4)
            .run(&s)
            .to_json();
        let without = OccupancyMethod::new()
            .grid(SweepGrid::Geometric { points: 10 })
            .threads(2)
            .refine(1, 4)
            .no_delta_propagation(true)
            .run(&s)
            .to_json();
        assert_eq!(with_delta, without, "delta propagation must not change the report");
    }

    #[test]
    fn incremental_timeline_is_bit_identical() {
        let s = ring_stream(9, 120, 5);
        // divisor ladder: every scale merges from its neighbor, the
        // configuration where the incremental path does the most work
        let ladder = vec![500u64, 250, 50, 10, 5, 1];
        for threads in [1usize, 3] {
            let incremental = OccupancyMethod::new()
                .grid(SweepGrid::ExplicitK(ladder.clone()))
                .threads(threads)
                .refine(1, 4)
                .run(&s)
                .to_json();
            let scratch = OccupancyMethod::new()
                .grid(SweepGrid::ExplicitK(ladder.clone()))
                .threads(threads)
                .refine(1, 4)
                .no_incremental_timeline(true)
                .run(&s)
                .to_json();
            assert_eq!(
                incremental, scratch,
                "incremental timeline construction must not change the report (threads={threads})"
            );
        }
        // and on the default geometric grid, where divisor pairs are rare
        let a = OccupancyMethod::new().threads(2).refine(1, 4).run(&s).to_json();
        let b = OccupancyMethod::new()
            .threads(2)
            .refine(1, 4)
            .no_incremental_timeline(true)
            .run(&s)
            .to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn single_scale_fans_out_over_tiles() {
        // a one-scale sweep on a multi-worker pool: only tiling can feed it
        let s = ring_stream(24, 120, 7);
        let untiled = OccupancyMethod::new()
            .grid(SweepGrid::ExplicitK(vec![40]))
            .threads(1)
            .refine(0, 0)
            .tile(usize::MAX)
            .run(&s);
        let tiled = OccupancyMethod::new()
            .grid(SweepGrid::ExplicitK(vec![40]))
            .threads(4)
            .refine(0, 0)
            .tile(5) // 24 columns -> 5 tiles
            .run(&s);
        assert_eq!(tiled.to_json(), untiled.to_json());
    }

    #[test]
    fn prefired_token_cancels_before_any_work() {
        let s = ring_stream(8, 80, 7);
        let ctl = SweepControl::new();
        ctl.cancel.cancel();
        let mut pool = WorkerPool::new(2);
        let method = OccupancyMethod::new().grid(SweepGrid::Geometric { points: 12 });
        assert!(matches!(method.try_run_on(&s, &mut pool, &ctl), Err(Cancelled)));
        let (done, total) = ctl.progress.snapshot();
        assert_eq!(done, 0);
        assert!(total > 0, "total is set before the sweep fans out");
    }

    #[test]
    fn token_fired_mid_sweep_stops_the_run() {
        // Many scales on a single worker: a watcher fires the token as soon
        // as the first scale completes, and the per-item poll turns the long
        // remaining tail into no-ops.
        let s = ring_stream(12, 360, 5);
        let ks: Vec<u64> = (2..=250).map(|i| 2 * i).collect();
        let method = OccupancyMethod::new().grid(SweepGrid::ExplicitK(ks.clone())).refine(0, 0);
        let ctl = Arc::new(SweepControl::new());
        let watcher = {
            let ctl = Arc::clone(&ctl);
            std::thread::spawn(move || loop {
                let (done, _) = ctl.progress.snapshot();
                if done >= 1 {
                    ctl.cancel.cancel();
                    return;
                }
                if ctl.cancel.is_cancelled() {
                    return;
                }
                std::hint::spin_loop();
            })
        };
        let mut pool = WorkerPool::new(1);
        let result = method.try_run_on(&s, &mut pool, &ctl);
        // unblock the watcher in the (theoretical) case nothing completed
        ctl.cancel.cancel();
        watcher.join().unwrap();
        assert!(matches!(result, Err(Cancelled)));
        let (done, total) = ctl.progress.snapshot();
        assert!(done < total, "cancellation must leave scales unfinished ({done}/{total})");
    }

    #[test]
    fn unfired_control_is_bit_identical_to_plain_run() {
        let s = ring_stream(9, 90, 6);
        let method =
            OccupancyMethod::new().grid(SweepGrid::Geometric { points: 10 }).refine(1, 4);
        let mut pool = WorkerPool::new(2);
        let plain = method.run_on(&s, &mut pool).to_json();
        let ctl = SweepControl::new();
        let controlled = method.try_run_on(&s, &mut pool, &ctl).unwrap().to_json();
        assert_eq!(plain, controlled, "an unfired token must not change the report");
        let (done, total) = ctl.progress.snapshot();
        assert_eq!(done, total, "all scales accounted for");
        assert!(total > 0);
    }

    /// An attached observer sees every tile exactly once, tallies the
    /// scales through `last_tile_of_scale`, and — because it runs strictly
    /// after each tile's histogram is sealed — cannot change report bytes.
    #[test]
    fn observer_sees_every_tile_and_never_changes_bytes() {
        use crate::control::{SweepObserver, TileSpan};
        use std::sync::atomic::{AtomicU64, Ordering};

        #[derive(Debug, Default)]
        struct CountingObserver {
            tiles: AtomicU64,
            scales: AtomicU64,
            trips: AtomicU64,
        }
        impl SweepObserver for CountingObserver {
            fn tile_done(&self, span: &TileSpan) {
                self.tiles.fetch_add(1, Ordering::Relaxed);
                if span.last_tile_of_scale {
                    self.scales.fetch_add(1, Ordering::Relaxed);
                }
                self.trips.fetch_add(span.trips, Ordering::Relaxed);
            }
        }

        let s = ring_stream(9, 90, 6);
        // tile(2) splits scales into several spans each; refinement rounds
        // exercise repeated sweeps under one control
        let method = OccupancyMethod::new()
            .grid(SweepGrid::Geometric { points: 10 })
            .tile(2)
            .refine(1, 4);
        let mut pool = WorkerPool::new(2);
        let plain = method.run_on(&s, &mut pool).to_json();
        let observer = Arc::new(CountingObserver::default());
        let ctl = SweepControl::with_observer(Arc::clone(&observer) as _);
        let observed = method.try_run_on(&s, &mut pool, &ctl).unwrap().to_json();
        assert_eq!(plain, observed, "an observer must not change the report");
        let (done, total) = ctl.progress.snapshot();
        assert_eq!(done, total);
        assert_eq!(
            observer.scales.load(Ordering::Relaxed),
            total,
            "one last-tile span per scale"
        );
        assert!(
            observer.tiles.load(Ordering::Relaxed) >= total,
            "tiled scales emit at least one span each"
        );
        // the spans carry the DP's own numbers: summed trips match the
        // report's per-scale trip counts across coarse sweep + refinement
        let report = method.try_run_on(&s, &mut pool, &SweepControl::new()).unwrap();
        let coarse_trips: u64 = report.results().iter().map(|r| r.trips).sum();
        assert!(observer.trips.load(Ordering::Relaxed) >= coarse_trips);
    }

    /// Builds a pinned-period ring stream plus a grown twin with `extra`
    /// appended events landing strictly after the base activity.
    fn ring_with_appends(extra: usize) -> (LinkStream, LinkStream, i64) {
        let mut base = LinkStreamBuilder::indexed(Directedness::Undirected, 8);
        base.period(0, 1200);
        for i in 0..90usize {
            let u = (i as u32) % 8;
            base.add_indexed(u, (u + 1) % 8, i as i64 * 10); // t in [0, 890]
        }
        let old = base.clone().build().unwrap();
        let first_append_t = 900i64;
        let mut grown = base;
        for i in 0..extra {
            let u = (i as u32 * 3) % 8;
            grown.add_indexed(u, (u + 5) % 8, first_append_t + (i as i64 * 7) % 300);
        }
        (old, grown.build().unwrap(), first_append_t)
    }

    #[test]
    fn refresh_is_byte_identical_to_scratch_and_reuses_scales() {
        let (old, new, t0) = ring_with_appends(40);
        for (no_delta, no_incremental) in [(false, false), (true, true)] {
            let method = OccupancyMethod::new()
                .grid(SweepGrid::Geometric { points: 12 })
                .refine(1, 4)
                .no_delta_propagation(no_delta)
                .no_incremental_timeline(no_incremental);
            let mut pool = WorkerPool::new(2);
            let mut cache = SweepCache::new();
            // cold refresh == scratch run on the base stream
            let cold =
                method.try_refresh_on(&old, &mut pool, &SweepControl::new(), &mut cache, None);
            assert_eq!(cold.unwrap().to_json(), method.run_on(&old, &mut pool).to_json());
            assert!(cache.stats.scales_reused == 0 && cache.stats.scales_respliced == 0);
            assert!(!cache.is_empty());
            // warm refresh after appends == scratch run on the grown stream
            let warm = method
                .try_refresh_on(&new, &mut pool, &SweepControl::new(), &mut cache, Some(t0))
                .unwrap();
            assert_eq!(
                warm.to_json(),
                method.run_on(&new, &mut pool).to_json(),
                "refresh must be byte-identical to scratch (no_delta={no_delta})"
            );
            assert!(
                cache.stats.scales_respliced > 0,
                "late appends splice at least the finest scales: {:?}",
                cache.stats
            );
            assert!(cache.stats.suffix_windows_rebuilt > 0);
            // identical re-refresh with no appends: everything reuses
            let again = method
                .try_refresh_on(&new, &mut pool, &SweepControl::new(), &mut cache, None)
                .unwrap();
            assert_eq!(again.to_json(), warm.to_json());
            assert_eq!(
                cache.stats.scales_reused, cache.stats.scales_total,
                "{:?}",
                cache.stats
            );
            assert_eq!(cache.stats.scales_respliced + cache.stats.scales_scratch, 0);
            assert!(cache.stats.tiles_skipped > 0);
        }
    }

    #[test]
    fn repeated_appends_refresh_through_one_cache() {
        // three rounds of growth through one session cache, each checked
        // against a scratch sweep of the concatenated stream
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 6);
        b.period(0, 600);
        for i in 0..40i64 {
            b.add_indexed((i % 6) as u32, ((i + 1) % 6) as u32, i * 5);
        }
        let method =
            OccupancyMethod::new().grid(SweepGrid::Geometric { points: 10 }).refine(1, 3);
        let mut pool = WorkerPool::new(1);
        let mut cache = SweepCache::new();
        let first = b.clone().build().unwrap();
        let cold = method
            .try_refresh_on(&first, &mut pool, &SweepControl::new(), &mut cache, None)
            .unwrap();
        assert_eq!(cold.to_json(), method.run_on(&first, &mut pool).to_json());
        let mut t = 200i64;
        for round in 0..3 {
            let t0 = t;
            for i in 0..15i64 {
                b.add_indexed((i % 6) as u32, ((i * 5 + 2) % 6) as u32, t);
                t += 7;
            }
            let grown = b.clone().build().unwrap();
            let refreshed = method
                .try_refresh_on(&grown, &mut pool, &SweepControl::new(), &mut cache, Some(t0))
                .unwrap();
            assert_eq!(
                refreshed.to_json(),
                method.run_on(&grown, &mut pool).to_json(),
                "round {round}"
            );
        }
    }

    #[test]
    fn refresh_invalidates_on_target_change_and_prunes_dropped_scales() {
        let (old, ..) = ring_with_appends(0);
        let mut pool = WorkerPool::new(1);
        let mut cache = SweepCache::new();
        let wide =
            OccupancyMethod::new().grid(SweepGrid::Geometric { points: 12 }).refine(0, 0);
        wide.try_refresh_on(&old, &mut pool, &SweepControl::new(), &mut cache, None).unwrap();
        let cached_wide = cache.len();
        assert!(cached_wide > 0);
        // a narrower grid prunes the scales that left it
        let narrow =
            OccupancyMethod::new().grid(SweepGrid::Geometric { points: 5 }).refine(0, 0);
        narrow.try_refresh_on(&old, &mut pool, &SweepControl::new(), &mut cache, None).unwrap();
        assert!(cache.len() < cached_wide, "{} -> {}", cached_wide, cache.len());
        // a different target spec voids the cache: nothing reuses
        let sampled = narrow.targets(TargetSpec::Sample { size: 4, seed: 1 });
        let report = sampled
            .try_refresh_on(&old, &mut pool, &SweepControl::new(), &mut cache, None)
            .unwrap();
        assert_eq!(cache.stats.scales_reused, 0);
        assert_eq!(report.to_json(), sampled.run_on(&old, &mut pool).to_json());
    }

    #[test]
    fn cancelled_refresh_leaves_the_cache_untouched() {
        let (old, new, t0) = ring_with_appends(30);
        let method =
            OccupancyMethod::new().grid(SweepGrid::Geometric { points: 10 }).refine(0, 0);
        let mut pool = WorkerPool::new(1);
        let mut cache = SweepCache::new();
        method.try_refresh_on(&old, &mut pool, &SweepControl::new(), &mut cache, None).unwrap();
        let before = cache.len();
        let ctl = SweepControl::new();
        ctl.cancel.cancel();
        assert!(matches!(
            method.try_refresh_on(&new, &mut pool, &ctl, &mut cache, Some(t0)),
            Err(Cancelled)
        ));
        assert_eq!(cache.len(), before, "cancelled refresh must not grow the cache");
        // keeping the dirty mark, the retry is still byte-identical
        let retry = method
            .try_refresh_on(&new, &mut pool, &SweepControl::new(), &mut cache, Some(t0))
            .unwrap();
        assert_eq!(retry.to_json(), method.run_on(&new, &mut pool).to_json());
    }

    #[test]
    fn refresh_of_an_inconsistent_snapshot_falls_back_to_scratch() {
        // simulates the executor race: a refresh of an OLDER snapshot
        // executes after a refresh of a newer one already advanced the
        // cache (concurrent refreshes of one session can land on different
        // shards and run out of submission order)
        let (old, new, t0) = ring_with_appends(30);
        let method =
            OccupancyMethod::new().grid(SweepGrid::Geometric { points: 10 }).refine(1, 3);
        let mut pool = WorkerPool::new(2);
        let mut cache = SweepCache::new();
        method.try_refresh_on(&new, &mut pool, &SweepControl::new(), &mut cache, None).unwrap();
        // the stale snapshot claims clean (it was cut before the racing
        // append): reusing the cached timelines would serve the newer
        // stream's histograms under the older stream's identity
        let stale = method
            .try_refresh_on(&old, &mut pool, &SweepControl::new(), &mut cache, None)
            .unwrap();
        assert_eq!(stale.to_json(), method.run_on(&old, &mut pool).to_json());
        assert_eq!(cache.stats.scales_reused + cache.stats.scales_respliced, 0);
        // the fallback re-stamped the cache as the old stream's: an
        // identical follow-up refresh is fully reusable again
        let again = method
            .try_refresh_on(&old, &mut pool, &SweepControl::new(), &mut cache, None)
            .unwrap();
        assert_eq!(again.to_json(), stale.to_json());
        assert_eq!(cache.stats.scales_reused, cache.stats.scales_total, "{:?}", cache.stats);

        // stale snapshot carrying a dirty mark (the racing append landed
        // below it): splicing would keep a prefix with phantom events or
        // trip the append-only assert — must scratch instead
        let mut cache = SweepCache::new();
        method
            .try_refresh_on(&new, &mut pool, &SweepControl::new(), &mut cache, Some(t0))
            .unwrap();
        let stale = method
            .try_refresh_on(&old, &mut pool, &SweepControl::new(), &mut cache, Some(t0))
            .unwrap();
        assert_eq!(stale.to_json(), method.run_on(&old, &mut pool).to_json());
        assert_eq!(cache.stats.scales_reused + cache.stats.scales_respliced, 0);

        // a grown stream claiming clean (a caller that lost its dirty
        // mark) is equally inconsistent: scratch, not reuse
        let mut cache = SweepCache::new();
        method.try_refresh_on(&old, &mut pool, &SweepControl::new(), &mut cache, None).unwrap();
        let grown = method
            .try_refresh_on(&new, &mut pool, &SweepControl::new(), &mut cache, None)
            .unwrap();
        assert_eq!(grown.to_json(), method.run_on(&new, &mut pool).to_json());
        assert_eq!(cache.stats.scales_reused + cache.stats.scales_respliced, 0);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let s = ring_stream(7, 70, 5);
        let a =
            OccupancyMethod::new().threads(1).grid(SweepGrid::Geometric { points: 12 }).run(&s);
        let b =
            OccupancyMethod::new().threads(4).grid(SweepGrid::Geometric { points: 12 }).run(&s);
        assert_eq!(a.results().len(), b.results().len());
        for (x, y) in a.results().iter().zip(b.results()) {
            assert_eq!(x.k, y.k);
            assert_eq!(x.trips, y.trips);
            assert_eq!(x.scores.mk_proximity.to_bits(), y.scores.mk_proximity.to_bits());
        }
    }
}
