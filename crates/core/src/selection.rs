//! Comparison of the five selection methods (Section 7, Figure 7).
//!
//! All uniformity scores are computed for every swept scale, so comparing
//! which `Δ` each method selects costs nothing beyond one sweep. The paper's
//! finding on Irvine: M-K, standard deviation, Shannon(10) and CRE agree to
//! within a few hours, while the variation coefficient degenerates to
//! (almost) no aggregation.

use crate::report::{GammaResult, OccupancyReport};
use crate::{KeepPolicy, OccupancyMethod, SweepGrid, TargetSpec};
use saturn_distrib::SelectionMetric;
use saturn_linkstream::LinkStream;
use serde::Serialize;

/// The scale each selection method picks, plus the underlying sweep.
#[derive(Clone, Debug, Serialize)]
pub struct SelectionComparison {
    /// `(metric, selected scale)` for every Section 7 method.
    pub gammas: Vec<(SelectionMetric, Option<GammaResult>)>,
    /// The sweep all methods were evaluated on.
    pub report: OccupancyReport,
}

impl SelectionComparison {
    /// `(Δ_ticks, score/max_score)` — the normalized curves of Figure 7
    /// (right). Returns an empty vector if the metric never scored finite.
    pub fn normalized_curve(&self, metric: SelectionMetric) -> Vec<(f64, f64)> {
        let curve = self.report.curve_for(metric);
        let max =
            curve.iter().map(|&(_, s)| s).filter(|s| s.is_finite()).fold(f64::MIN, f64::max);
        if max <= 0.0 || max.is_nan() {
            return Vec::new();
        }
        curve.into_iter().map(|(d, s)| (d, s / max)).collect()
    }
}

/// Runs one sweep and reports the scale selected by each method.
pub fn compare_selection_methods(
    stream: &LinkStream,
    grid: SweepGrid,
    targets: TargetSpec,
    threads: usize,
    keep: KeepPolicy,
) -> SelectionComparison {
    let report = OccupancyMethod::new()
        .grid(grid)
        .targets(targets)
        .threads(threads)
        .keep(keep)
        .run(stream);
    let metrics = [
        SelectionMetric::MkProximity,
        SelectionMetric::StdDev,
        SelectionMetric::VariationCoefficient,
        SelectionMetric::ShannonEntropy { slots: 5 },
        SelectionMetric::ShannonEntropy { slots: 10 },
        SelectionMetric::ShannonEntropy { slots: 20 },
        SelectionMetric::ShannonEntropy { slots: 100 },
        SelectionMetric::Cre,
    ];
    let gammas = metrics.iter().map(|&m| (m, report.gamma_for(m))).collect();
    SelectionComparison { gammas, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saturn_linkstream::{Directedness, LinkStreamBuilder};

    fn stream() -> LinkStream {
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 10);
        for i in 0..300i64 {
            b.add_indexed((i % 10) as u32, ((i * 7 + 3) % 10) as u32, i * 11 + (i % 5));
        }
        b.build().unwrap()
    }

    #[test]
    fn every_method_selects_something() {
        let cmp = compare_selection_methods(
            &stream(),
            SweepGrid::Geometric { points: 12 },
            TargetSpec::All,
            2,
            KeepPolicy::ScoresOnly,
        );
        assert_eq!(cmp.gammas.len(), 8);
        for (metric, gamma) in &cmp.gammas {
            assert!(gamma.is_some(), "{metric} selected nothing");
        }
    }

    #[test]
    fn reasonable_methods_roughly_agree() {
        // M-K, std-dev, Shannon(10) and CRE should land within a factor ~8
        // of each other on a well-behaved stream (the paper: 14.5h–18.7h on
        // Irvine); the variation coefficient is excluded (documented
        // failure).
        let cmp = compare_selection_methods(
            &stream(),
            SweepGrid::Geometric { points: 16 },
            TargetSpec::All,
            2,
            KeepPolicy::ScoresOnly,
        );
        let get = |m: SelectionMetric| {
            cmp.gammas
                .iter()
                .find(|(mm, _)| *mm == m)
                .and_then(|(_, g)| *g)
                .map(|g| g.delta_ticks)
                .unwrap()
        };
        let mk = get(SelectionMetric::MkProximity);
        for m in [
            SelectionMetric::StdDev,
            SelectionMetric::ShannonEntropy { slots: 10 },
            SelectionMetric::Cre,
        ] {
            let d = get(m);
            let ratio = if d > mk { d / mk } else { mk / d };
            assert!(ratio <= 8.0, "{m}: {d} vs M-K {mk} (ratio {ratio})");
        }
    }

    #[test]
    fn normalized_curves_peak_at_one() {
        let cmp = compare_selection_methods(
            &stream(),
            SweepGrid::Geometric { points: 10 },
            TargetSpec::All,
            1,
            KeepPolicy::ScoresOnly,
        );
        let c = cmp.normalized_curve(SelectionMetric::MkProximity);
        assert!(!c.is_empty());
        let max = c.iter().map(|&(_, y)| y).fold(f64::MIN, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        assert!(c.iter().all(|&(_, y)| y <= 1.0 + 1e-12));
    }
}
