//! Grids of candidate aggregation scales.
//!
//! The method sweeps `Δ` from the timestamp resolution up to the full study
//! period `T`. Scales are parameterized by the integer window count
//! `K = T/Δ` (Definition 1), so a grid is a set of `K` values between 1 and
//! `K_max = T / Δ_min`.

use saturn_linkstream::LinkStream;
use serde::{Deserialize, Serialize};

/// Maximum window count accepted by the trip engine (`u32` step indices).
const K_LIMIT: u64 = (u32::MAX - 1) as u64;

/// A strategy generating candidate window counts.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SweepGrid {
    /// `points` values of `Δ` spaced geometrically between `Δ_min` and `T`
    /// (the paper's figures span 4+ orders of magnitude of `Δ`, so this is
    /// the default).
    Geometric {
        /// Number of grid points.
        points: usize,
    },
    /// `points` values of `Δ` spaced linearly between `Δ_min` and `T`.
    Linear {
        /// Number of grid points.
        points: usize,
    },
    /// Explicit window counts (deduplicated, clamped to the valid range).
    ExplicitK(Vec<u64>),
}

impl Default for SweepGrid {
    fn default() -> Self {
        SweepGrid::Geometric { points: 64 }
    }
}

impl SweepGrid {
    /// Materializes the window counts for `stream`, with the smallest
    /// aggregation period `delta_min` ticks (usually the timestamp
    /// resolution, 1). Returns values sorted descending (fine `Δ` first) and
    /// deduplicated; always contains at least `K = 1`.
    pub fn k_values(&self, stream: &LinkStream, delta_min: i64) -> Vec<u64> {
        let span = stream.span().max(0) as u64;
        let delta_min = delta_min.max(1) as u64;
        let k_max = (span / delta_min).clamp(1, K_LIMIT);
        let mut ks: Vec<u64> = match self {
            SweepGrid::Geometric { points } => {
                let p = (*points).max(2);
                // Δ_i geometric between delta_min and span  <=>  K_i = span/Δ_i
                // geometric between k_max and 1.
                (0..p)
                    .map(|i| {
                        let frac = i as f64 / (p - 1) as f64;
                        let k = (k_max as f64).powf(1.0 - frac);
                        (k.round() as u64).clamp(1, k_max)
                    })
                    .collect()
            }
            SweepGrid::Linear { points } => {
                let p = (*points).max(2);
                (0..p)
                    .map(|i| {
                        let frac = i as f64 / (p - 1) as f64;
                        // Δ linear => K = k_max / (1 + frac·(k_max - 1))
                        let delta = 1.0 + frac * (k_max as f64 - 1.0);
                        ((k_max as f64 / delta).round() as u64).clamp(1, k_max)
                    })
                    .collect()
            }
            SweepGrid::ExplicitK(ks) => ks.iter().map(|&k| k.clamp(1, k_max)).collect(),
        };
        ks.sort_unstable_by(|a, b| b.cmp(a));
        ks.dedup();
        if ks.is_empty() {
            ks.push(1);
        }
        ks
    }

    /// Window counts filling the open interval between two window counts
    /// (used for local refinement around the coarse-grid maximum). Returns
    /// up to `points` new values strictly between `k_lo` and `k_hi`
    /// (`k_lo < k_hi`), geometrically spaced, excluding the endpoints.
    pub fn refine_between(k_lo: u64, k_hi: u64, points: usize) -> Vec<u64> {
        debug_assert!(k_lo < k_hi);
        let mut out = Vec::new();
        let (lo, hi) = (k_lo as f64, k_hi as f64);
        for i in 1..=points {
            let frac = i as f64 / (points + 1) as f64;
            let k = (lo * (hi / lo).powf(frac)).round() as u64;
            if k > k_lo && k < k_hi {
                out.push(k);
            }
        }
        out.sort_unstable_by(|a, b| b.cmp(a));
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saturn_linkstream::{Directedness, LinkStreamBuilder};

    fn stream(span: i64) -> LinkStream {
        let mut b = LinkStreamBuilder::new(Directedness::Undirected);
        b.add("a", "b", 0);
        b.add("b", "c", span);
        b.build().unwrap()
    }

    #[test]
    fn geometric_covers_both_ends() {
        let s = stream(10_000);
        let ks = SweepGrid::Geometric { points: 20 }.k_values(&s, 1);
        assert_eq!(*ks.first().unwrap(), 10_000); // Δ = resolution
        assert_eq!(*ks.last().unwrap(), 1); // Δ = T
        assert!(ks.windows(2).all(|w| w[0] > w[1]), "strictly descending");
    }

    #[test]
    fn linear_grid_is_valid() {
        let s = stream(1_000);
        let ks = SweepGrid::Linear { points: 10 }.k_values(&s, 1);
        assert!(ks.iter().all(|&k| (1..=1_000).contains(&k)));
        assert!(ks.contains(&1));
        assert!(ks.contains(&1_000));
    }

    #[test]
    fn explicit_is_clamped_and_deduped() {
        let s = stream(100);
        let ks = SweepGrid::ExplicitK(vec![5, 500, 5, 0, 1]).k_values(&s, 1);
        assert_eq!(ks, vec![100, 5, 1]); // 500 clamped to k_max=100, 0 to 1
    }

    #[test]
    fn delta_min_limits_k_max() {
        let s = stream(10_000);
        let ks = SweepGrid::Geometric { points: 10 }.k_values(&s, 100);
        assert_eq!(*ks.first().unwrap(), 100); // K_max = span/delta_min
    }

    #[test]
    fn zero_span_stream_yields_single_k() {
        let mut b = LinkStreamBuilder::new(Directedness::Undirected);
        b.add("a", "b", 5);
        let s = b.build().unwrap();
        let ks = SweepGrid::default().k_values(&s, 1);
        assert_eq!(ks, vec![1]);
    }

    #[test]
    fn refine_between_stays_strictly_inside() {
        let mid = SweepGrid::refine_between(10, 1000, 7);
        assert!(!mid.is_empty());
        assert!(mid.iter().all(|&k| k > 10 && k < 1000));
        assert!(mid.windows(2).all(|w| w[0] > w[1]));
        // adjacent counts leave nothing to refine
        assert!(SweepGrid::refine_between(10, 11, 7).is_empty());
    }
}
