//! Information-loss validation sweeps (Section 8, Figure 8).
//!
//! Two direct measures of what aggregation destroys:
//!
//! * **lost shortest transitions** — the fraction of two-hop minimal trips of
//!   `L` whose hops collapse into a single window of `G_Δ` (their order, and
//!   hence the transition, is erased);
//! * **mean elongation factor** — how much slower the minimal trips of `G_Δ`
//!   are than the fastest corresponding trips of `L`.
//!
//! Both stay flat over several orders of magnitude of `Δ` and take off
//! around the saturation scale, validating the occupancy method's choice.

use crate::control::SweepControl;
use crate::parallel::{effective_threads, WorkerPool};
use crate::{SweepGrid, TargetSpec};
use saturn_linkstream::LinkStream;
use saturn_trips::{
    elongation_stats_on, lost_transition_fraction, stream_minimal_trips, Cancelled,
    ElongationStats, EventView, Timeline,
};
use serde::Serialize;

/// Loss measures at one scale.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ValidationPoint {
    /// Window count `K`.
    pub k: u64,
    /// Window length `Δ` in ticks.
    pub delta_ticks: f64,
    /// Fraction of shortest transitions lost (Figure 8, left).
    pub lost_transitions: f64,
    /// Elongation statistics (Figure 8, right).
    pub elongation: ElongationStats,
}

/// Result of a validation sweep.
#[derive(Clone, Debug, Serialize)]
pub struct ValidationReport {
    /// Per-scale measures, `Δ` ascending.
    pub points: Vec<ValidationPoint>,
    /// Number of minimal trips of the original stream (the elongation
    /// reference).
    pub reference_trips: u64,
    /// Number of shortest transitions (weighted) of the original stream.
    pub reference_transitions: u64,
}

/// Named knobs of a validation sweep (replaces the former opaque positional
/// `threads, delta_min, weighted_transitions` arguments).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ValidationOptions {
    /// Worker thread count (0 = all available cores). Ignored by
    /// [`validation_sweep_on`], which runs on a caller-provided pool.
    pub threads: usize,
    /// Smallest aggregation period in ticks (1 = the resolution of integer
    /// timestamps).
    pub delta_min: i64,
    /// Count each two-hop trip with its number of middle nodes (the exact
    /// multiset of Definition 6) rather than once.
    pub weighted_transitions: bool,
}

impl Default for ValidationOptions {
    fn default() -> Self {
        ValidationOptions { threads: 0, delta_min: 1, weighted_transitions: true }
    }
}

/// Sweeps both loss measures over `grid` on a transient worker pool sized by
/// `options.threads`. Long-lived callers (the analysis service) should hold
/// a [`WorkerPool`] and use [`validation_sweep_on`] instead.
pub fn validation_sweep(
    stream: &LinkStream,
    grid: &SweepGrid,
    targets: TargetSpec,
    options: &ValidationOptions,
) -> ValidationReport {
    let ks = grid.k_values(stream, options.delta_min);
    let mut pool = WorkerPool::new(effective_threads(options.threads, ks.len()));
    validation_sweep_on(stream, grid, targets, options, &mut pool)
}

/// [`validation_sweep`] on a caller-owned pool (shared across requests in
/// the analysis service; `options.threads` is ignored here).
pub fn validation_sweep_on(
    stream: &LinkStream,
    grid: &SweepGrid,
    targets: TargetSpec,
    options: &ValidationOptions,
    pool: &mut WorkerPool,
) -> ValidationReport {
    try_validation_sweep_on(stream, grid, targets, options, pool, &SweepControl::new())
        .expect("a sweep whose token never fires cannot be cancelled")
}

/// [`validation_sweep_on`] under a caller-held [`SweepControl`]: workers
/// poll `ctl.cancel` before each scale, a fired token returns [`Cancelled`]
/// and discards all partial points, and `ctl.progress` counts completed
/// scales. With a never-fired token the report is bit-identical to
/// [`validation_sweep_on`].
pub fn try_validation_sweep_on(
    stream: &LinkStream,
    grid: &SweepGrid,
    targets: TargetSpec,
    options: &ValidationOptions,
    pool: &mut WorkerPool,
    ctl: &SweepControl,
) -> Result<ValidationReport, Cancelled> {
    let target_set = targets.build(stream.node_count() as u32);
    let ks = grid.k_values(stream, options.delta_min);
    ctl.progress.set_total(ks.len() as u64);
    let reference = stream_minimal_trips(stream, &target_set, options.weighted_transitions);
    if ctl.cancel.is_cancelled() {
        // the reference computation itself can carry real cost; honor a
        // token that fired during it before fanning out
        return Err(Cancelled);
    }
    let view = EventView::new(stream);
    let mut points = pool.map(&ks, |_wid, &k| {
        // Every slot must be written; a cancelled item returns a (discarded)
        // placeholder instead of doing the work.
        if ctl.cancel.is_cancelled() {
            return ValidationPoint {
                k,
                delta_ticks: f64::NAN,
                lost_transitions: f64::NAN,
                elongation: ElongationStats {
                    k,
                    delta_ticks: f64::NAN,
                    mean: f64::NAN,
                    count: 0,
                    single_window: 0,
                },
            };
        }
        let partition = stream.partition(k).expect("grid yields valid k");
        let timeline = Timeline::aggregated_from_view(&view, k);
        let point = ValidationPoint {
            k,
            delta_ticks: partition.delta_ticks(),
            lost_transitions: lost_transition_fraction(&reference.transitions, &partition),
            elongation: elongation_stats_on(&timeline, partition, &reference, &target_set),
        };
        if !ctl.cancel.is_cancelled() {
            ctl.progress.add_done(1);
        }
        point
    });
    if ctl.cancel.is_cancelled() {
        return Err(Cancelled);
    }
    points.sort_unstable_by_key(|p| std::cmp::Reverse(p.k));
    Ok(ValidationReport {
        points,
        reference_trips: reference.total_trips(),
        reference_transitions: reference.transitions.total_weight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use saturn_linkstream::{Directedness, LinkStreamBuilder};

    fn stream() -> LinkStream {
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 8);
        // chain-y activity with enough transitions
        for i in 0..160i64 {
            b.add_indexed((i % 8) as u32, ((i + 1) % 8) as u32, i * 7 + (i % 3));
        }
        b.build().unwrap()
    }

    #[test]
    fn loss_is_monotone_in_delta_extremes() {
        let s = stream();
        let report = validation_sweep(
            &s,
            &SweepGrid::Geometric { points: 10 },
            TargetSpec::All,
            &ValidationOptions { threads: 2, ..ValidationOptions::default() },
        );
        assert!(report.reference_trips > 0);
        assert!(report.reference_transitions > 0);
        let first = report.points.first().unwrap();
        let last = report.points.last().unwrap();
        // finest scale: every timestamp its own window (almost) — low loss
        assert!(first.lost_transitions <= 0.2, "fine loss {}", first.lost_transitions);
        // Δ = T: everything collapses — total loss
        assert_eq!(last.k, 1);
        assert!((last.lost_transitions - 1.0).abs() < 1e-12);
    }

    #[test]
    fn elongation_starts_near_one() {
        let s = stream();
        let report = validation_sweep(
            &s,
            &SweepGrid::Geometric { points: 8 },
            TargetSpec::All,
            &ValidationOptions {
                threads: 1,
                weighted_transitions: false,
                ..Default::default()
            },
        );
        let fine = report.points.first().unwrap();
        if fine.elongation.count > 0 {
            assert!(
                (fine.elongation.mean - 1.0).abs() < 0.5,
                "fine-scale elongation should be near 1, got {}",
                fine.elongation.mean
            );
        }
        // every finite elongation mean is >= 1
        for p in &report.points {
            if p.elongation.count > 0 {
                assert!(
                    p.elongation.mean >= 1.0 - 1e-9,
                    "k={} mean={}",
                    p.k,
                    p.elongation.mean
                );
            }
        }
    }

    #[test]
    fn shared_pool_matches_transient_pool() {
        let s = stream();
        let grid = SweepGrid::Geometric { points: 8 };
        let opts = ValidationOptions::default();
        let transient = validation_sweep(&s, &grid, TargetSpec::All, &opts);
        let mut pool = WorkerPool::new(3);
        // two consecutive sweeps on one pool: both must match exactly
        for _ in 0..2 {
            let shared = validation_sweep_on(&s, &grid, TargetSpec::All, &opts, &mut pool);
            assert_eq!(shared.reference_trips, transient.reference_trips);
            assert_eq!(shared.points.len(), transient.points.len());
            for (a, b) in shared.points.iter().zip(&transient.points) {
                assert_eq!(a.k, b.k);
                assert_eq!(a.lost_transitions.to_bits(), b.lost_transitions.to_bits());
                assert_eq!(a.elongation.mean.to_bits(), b.elongation.mean.to_bits());
            }
        }
    }
}
