//! Cross-crate property tests on randomly generated streams.

use proptest::prelude::*;
use saturn::distrib::{mk_distance_to_uniform, WeightedDist};
use saturn::prelude::*;
use saturn::trips::{earliest_arrival_dp, DpOptions, TripSink};

fn arb_stream() -> impl Strategy<Value = LinkStream> {
    proptest::collection::vec((0u32..8, 0u32..8, 0i64..200), 2..40).prop_filter_map(
        "non-empty",
        |events| {
            let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 8);
            for (u, v, t) in events {
                if u != v {
                    b.add_indexed(u, v, t);
                }
            }
            b.build().ok()
        },
    )
}

#[derive(Default)]
struct Collect(Vec<(u32, u32, u32, u32, u32)>);
impl TripSink for Collect {
    fn minimal_trip(&mut self, u: u32, v: u32, dep: u32, arr: u32, hops: u32) {
        self.0.push((u, v, dep, arr, hops));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// γ always lies inside [Δ_min, T], and the score curve is bounded by
    /// the M-K proximity ceiling of 1/2.
    #[test]
    fn gamma_is_well_bounded(stream in arb_stream()) {
        let report = OccupancyMethod::new()
            .grid(SweepGrid::Geometric { points: 10 })
            .threads(1)
            .refine(0, 0)
            .run(&stream);
        let gamma = report.gamma().expect("streams here are non-degenerate");
        prop_assert!(gamma.delta_ticks >= 0.0);
        prop_assert!(gamma.delta_ticks <= stream.span().max(1) as f64);
        for r in report.results() {
            prop_assert!(r.scores.mk_proximity <= 0.5 + 1e-12);
            prop_assert!(r.trips > 0, "every scale has at least the single-link trips");
        }
    }

    /// Aggregation never invents or loses pairs: the union of all snapshot
    /// edges equals the set of distinct pairs of the stream.
    #[test]
    fn aggregation_conserves_pairs(stream in arb_stream(), k in 1u64..50) {
        let k = if stream.span() == 0 { 1 } else { k.min(stream.span() as u64).max(1) };
        let series = GraphSeries::aggregate(&stream, k);
        let mut from_series: Vec<(u32, u32)> = series
            .snapshots()
            .flat_map(|(_, s)| s.edges().to_vec())
            .collect();
        from_series.sort_unstable();
        from_series.dedup();
        let mut from_stream: Vec<(u32, u32)> =
            stream.events().iter().map(|l| (l.u.raw(), l.v.raw())).collect();
        from_stream.sort_unstable();
        from_stream.dedup();
        prop_assert_eq!(from_series, from_stream);
    }

    /// Occupancy rates of every minimal trip lie in (0, 1]; total
    /// aggregation puts every rate at exactly 1.
    #[test]
    fn occupancy_rates_in_unit_interval(stream in arb_stream(), k in 1u64..60) {
        let k = if stream.span() == 0 { 1 } else { k.min(stream.span() as u64).max(1) };
        let timeline = Timeline::aggregated(&stream, k);
        let mut sink = Collect::default();
        earliest_arrival_dp(&timeline, &TargetSet::all(8), &mut sink, DpOptions::default());
        for &(_, _, dep, arr, hops) in &sink.0 {
            let dur = arr - dep + 1;
            prop_assert!(hops >= 1 && hops <= dur, "rate must be in (0, 1]");
        }
        if k == 1 {
            let all_saturated =
                sink.0.iter().all(|&(.., dep, _arr, hops)| dep == 0 && hops == 1);
            prop_assert!(all_saturated);
        }
    }

    /// The M-K distance is a metric-like quantity: within [0, 1/2] for any
    /// distribution built from trip rates.
    #[test]
    fn mk_distance_bounds(pairs in proptest::collection::vec((1u32..20, 1u32..20), 1..40)) {
        let values: Vec<(f64, u64)> = pairs
            .into_iter()
            .map(|(h, d)| {
                let (h, d) = if h <= d { (h, d) } else { (d, h) };
                (h as f64 / d as f64, 1)
            })
            .collect();
        let dist = WeightedDist::from_pairs(values);
        let d = mk_distance_to_uniform(&dist);
        prop_assert!((0.0..=0.5 + 1e-12).contains(&d));
    }

    /// Elongation means are always >= 1 (an aggregated trip can never be
    /// faster than the fastest underlying trip).
    #[test]
    fn elongation_at_least_one(stream in arb_stream(), k in 2u64..40) {
        let k = if stream.span() == 0 { 1 } else { k.min(stream.span() as u64).max(1) };
        let targets = TargetSet::all(8);
        let reference = stream_minimal_trips(&stream, &targets, false);
        let e = saturn::trips::elongation_stats(&stream, &reference, k, &targets);
        if e.count > 0 {
            prop_assert!(e.mean >= 1.0 - 1e-9, "mean elongation {} < 1", e.mean);
        }
    }

    /// Windows indices are monotone in time and partition all events.
    #[test]
    fn window_partition_is_sound(stream in arb_stream(), k in 1u64..100) {
        let k = if stream.span() == 0 { 1 } else { k.min(stream.span().max(1) as u64).max(1) };
        let partition = stream.partition(k).unwrap();
        let mut prev = 0u64;
        let mut covered = 0usize;
        for (w, links) in partition.window_slices(&stream) {
            prop_assert!(w >= prev);
            prev = w;
            prop_assert!(w < k);
            covered += links.len();
            for l in links {
                prop_assert_eq!(partition.index(l.t), w);
            }
        }
        prop_assert_eq!(covered, stream.len());
    }
}
