//! Failure-injection tests: malformed inputs and degenerate streams must
//! fail loudly and precisely, never silently corrupt an analysis.

use saturn::linkstream::{io, BuildError, Directedness, LinkStreamBuilder, ParseError};
use saturn::prelude::*;

#[test]
fn malformed_lines_report_position() {
    let cases = [
        ("a b\n", 1, "columns"),
        ("a b 1\nc d\n", 2, "columns"),
        ("a b 1\nc d x\n", 2, "integer"),
        ("a b c d e 1\n", 1, "columns"),
        ("a b 1.5e3\n", 1, "integer"),
    ];
    for (text, line, needle) in cases {
        match io::read_str(text, Directedness::Directed) {
            Err(ParseError::Malformed { line: l, reason }) => {
                assert_eq!(l, line, "case {text:?}");
                assert!(reason.contains(needle), "case {text:?}: {reason}");
            }
            other => panic!("case {text:?}: expected Malformed, got {other:?}"),
        }
    }
}

#[test]
fn empty_and_loop_only_inputs_fail() {
    for text in ["", "% only comments\n", "x x 1\nx x 2\n"] {
        match io::read_str(text, Directedness::Directed) {
            Err(ParseError::Build(BuildError::Empty)) => {}
            other => panic!("{text:?}: expected Empty, got {other:?}"),
        }
    }
}

#[test]
fn zero_span_stream_degenerates_gracefully() {
    // all events at one instant: only K = 1 is valid; γ is the whole period
    let mut b = LinkStreamBuilder::new(Directedness::Undirected);
    b.add("a", "b", 100);
    b.add("b", "c", 100);
    let stream = b.build().unwrap();
    assert_eq!(stream.span(), 0);
    assert!(stream.partition(2).is_err());

    let report = OccupancyMethod::new().threads(1).run(&stream);
    assert_eq!(report.results().len(), 1);
    let gamma = report.gamma().expect("single-scale gamma");
    assert_eq!(gamma.k, 1);
}

#[test]
fn single_event_stream_works() {
    let stream = io::read_str("a b 5\n", Directedness::Directed).unwrap();
    let report = OccupancyMethod::new().threads(1).run(&stream);
    // one link => every scale has exactly the two.. one directed trip at rate 1
    for r in report.results() {
        assert_eq!(r.trips, 1);
        assert_eq!(r.fraction_at_one, 1.0);
    }
}

#[test]
fn isolated_nodes_do_not_break_metrics() {
    let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 100);
    b.add_indexed(0, 1, 0);
    b.add_indexed(1, 2, 50);
    let stream = b.build().unwrap();
    assert_eq!(stream.node_count(), 100); // 97 isolated nodes

    let series = GraphSeries::aggregate(&stream, 2);
    let means = saturn::graphseries::snapshot_means(&stream, 2);
    assert!(means.mean_non_isolated <= 3.0);
    assert_eq!(series.n(), 100);

    let report = OccupancyMethod::new().threads(1).run(&stream);
    assert!(report.gamma().is_some());
}

#[test]
fn disconnected_stream_has_no_cross_component_trips() {
    // two components that never interact
    let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 4);
    b.add_indexed(0, 1, 0);
    b.add_indexed(0, 1, 10);
    b.add_indexed(2, 3, 5);
    b.add_indexed(2, 3, 15);
    let stream = b.build().unwrap();
    let trips = stream_minimal_trips(&stream, &TargetSet::all(4), false);
    assert!(trips.pair(0, 2).is_none());
    assert!(trips.pair(1, 3).is_none());
    assert!(trips.pair(0, 1).is_some());
}

#[test]
fn duplicate_heavy_input_is_deduplicated_once() {
    let mut text = String::new();
    for _ in 0..50 {
        text.push_str("a b 7\n");
    }
    text.push_str("b c 9\n");
    let stream = io::read_str(&text, Directedness::Directed).unwrap();
    assert_eq!(stream.len(), 2);
    assert_eq!(stream.dropped_duplicates(), 49);
}

#[test]
fn explicit_period_longer_than_data_widens_gamma_search() {
    let mut b = LinkStreamBuilder::new(Directedness::Undirected);
    b.add("a", "b", 0);
    b.add("b", "c", 10);
    b.period(0, 1_000);
    let stream = b.build().unwrap();
    assert_eq!(stream.span(), 1_000);
    let report = OccupancyMethod::new().threads(1).run(&stream);
    // scales now range up to 1000 ticks even though data spans 10
    assert!(report.results().iter().any(|r| r.delta_ticks > 100.0));
}

#[test]
fn unreadable_file_is_an_io_error_not_a_panic() {
    let err = io::read_path("/definitely/not/here.txt", Directedness::Directed).unwrap_err();
    assert!(matches!(err, ParseError::Io(_)));
    let err_str = err.to_string();
    assert!(err_str.contains("i/o error"));
}
