//! Integration tests: the full pipeline across crates, from raw text to the
//! saturation scale.

use saturn::core::{classic_sweep, validation_sweep};
use saturn::linkstream::io;
use saturn::prelude::*;

/// A periodic stream where the "right" scale is knowable: links repeat every
/// `gap` ticks along a path, so aggregation beyond a few `gap`s saturates.
fn periodic_chain(n: u32, repetitions: usize, gap: i64) -> LinkStream {
    let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, n);
    for rep in 0..repetitions {
        for i in 0..(n - 1) {
            let t = rep as i64 * (n as i64 - 1) * gap + i as i64 * gap;
            b.add_indexed(i, i + 1, t);
        }
    }
    b.build().unwrap()
}

#[test]
fn gamma_tracks_the_intrinsic_scale() {
    // Two identical topologies, one running 8x faster: γ must scale ~8x.
    let slow = periodic_chain(6, 60, 80);
    let fast = periodic_chain(6, 60, 10);
    let gamma = |s: &LinkStream| {
        OccupancyMethod::new()
            .grid(SweepGrid::Geometric { points: 24 })
            .threads(2)
            .run(s)
            .gamma()
            .unwrap()
            .delta_ticks
    };
    let gs = gamma(&slow);
    let gf = gamma(&fast);
    let ratio = gs / gf;
    assert!(
        (4.0..16.0).contains(&ratio),
        "slow/fast γ ratio {ratio} should be near 8 (γ_slow={gs}, γ_fast={gf})"
    );
}

#[test]
fn parse_analyze_report_roundtrip() {
    // text -> stream -> method -> JSON report
    let mut text = String::from("% synthetic trace\n");
    for i in 0..400i64 {
        text.push_str(&format!("u{} u{} {}\n", i % 7, (i + 1) % 7, i * 13));
    }
    let stream = io::read_str(&text, Directedness::Directed).unwrap();
    assert_eq!(stream.node_count(), 7);

    let report = OccupancyMethod::new()
        .grid(SweepGrid::Geometric { points: 16 })
        .threads(2)
        .run(&stream);
    let gamma = report.gamma().expect("gamma");
    assert!(gamma.delta_ticks >= 1.0 && gamma.delta_ticks <= stream.span() as f64);

    let json = report.to_json();
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(v["results"].as_array().unwrap().len(), report.results().len());
    // the serialized scores carry the M-K proximity used for gamma
    let max_prox = v["results"]
        .as_array()
        .unwrap()
        .iter()
        .map(|r| r["scores"]["mk_proximity"].as_f64().unwrap())
        .fold(f64::MIN, f64::max);
    assert!((max_prox - gamma.score).abs() < 1e-12);
}

#[test]
fn aggregation_preserves_every_event_in_some_window() {
    let stream = periodic_chain(5, 40, 17);
    for k in [1u64, 3, 10, 100, stream.span() as u64] {
        let series = GraphSeries::aggregate(&stream, k);
        // every event's pair appears in its window's snapshot
        let partition = stream.partition(k).unwrap();
        for l in stream.events() {
            let w = partition.index(l.t);
            let snap = series.snapshot_at(w).expect("window with an event is non-empty");
            assert!(
                snap.has_edge(l.u.raw(), l.v.raw()),
                "event {l:?} missing from window {w} at k={k}"
            );
        }
        // and M never exceeds the event count
        assert!(series.total_edges() <= stream.len());
    }
}

#[test]
fn stream_trips_upper_bound_series_trips_durations() {
    // Any trip of the aggregated series corresponds to a real propagation
    // opportunity: the underlying stream must connect the same pair within
    // the same real-time range (soundness of aggregation analysis).
    let stream = periodic_chain(6, 50, 23);
    let targets = TargetSet::all(6);
    let reference = stream_minimal_trips(&stream, &targets, false);
    let k = 50u64;
    let partition = stream.partition(k).unwrap();
    let timeline = Timeline::aggregated(&stream, k);

    struct Check<'a> {
        reference: &'a saturn::trips::StreamTrips,
        partition: WindowPartition,
        checked: usize,
    }
    impl saturn::trips::TripSink for Check<'_> {
        fn minimal_trip(&mut self, u: u32, v: u32, dep: u32, arr: u32, _hops: u32) {
            let trips = self.reference.pair(u, v).expect("series trip implies stream trip");
            let ok = trips.iter().any(|&(d, a)| {
                self.partition.index(Time::new(d)) >= dep as u64
                    && self.partition.index(Time::new(a)) <= arr as u64
            });
            assert!(ok, "aggregated trip ({u},{v},{dep},{arr}) has no stream counterpart");
            self.checked += 1;
        }
    }
    let mut check = Check { reference: &reference, partition, checked: 0 };
    saturn::trips::earliest_arrival_dp(
        &timeline,
        &targets,
        &mut check,
        saturn::trips::DpOptions::default(),
    );
    assert!(check.checked > 0);
}

#[test]
fn classic_and_validation_sweeps_run_end_to_end() {
    let stream = periodic_chain(6, 40, 19);
    let grid = SweepGrid::Geometric { points: 10 };

    let classic = classic_sweep(&stream, &grid, TargetSpec::All, 2, 1);
    assert!(classic.len() >= 8);
    assert!(classic.windows(2).all(|w| w[0].delta_ticks < w[1].delta_ticks));

    let validation = validation_sweep(
        &stream,
        &grid,
        TargetSpec::All,
        &saturn::core::ValidationOptions { threads: 2, ..Default::default() },
    );
    assert_eq!(validation.points.len(), classic.len());
    // loss is 1 at Δ = T
    assert!((validation.points.last().unwrap().lost_transitions - 1.0).abs() < 1e-12);
}

#[test]
fn dataset_standins_run_scaled() {
    // All four profiles, scaled small, through the full method.
    for profile in DatasetProfile::all() {
        let p = profile.scaled(0.03);
        let stream = p.generate(5);
        let report = OccupancyMethod::new()
            .grid(SweepGrid::Geometric { points: 12 })
            .threads(0)
            .refine(0, 0)
            .run(&stream);
        let gamma = report.gamma().unwrap_or_else(|| panic!("{}: no gamma", p.name));
        assert!(
            gamma.delta_ticks > 0.0 && gamma.delta_ticks <= stream.span() as f64,
            "{}: γ out of range",
            p.name
        );
        // extremes behave per Section 4
        let coarse = report.results().last().unwrap();
        assert!(coarse.fraction_at_one > 0.99, "{}: Δ=T not saturated", p.name);
    }
}

#[test]
fn sampled_and_exact_gamma_agree_on_dense_streams() {
    let stream =
        TimeUniform { nodes: 40, links_per_pair: 10, span: 20_000, seed: 3 }.generate();
    let run = |targets| {
        OccupancyMethod::new()
            .grid(SweepGrid::Geometric { points: 16 })
            .targets(targets)
            .threads(2)
            .run(&stream)
            .gamma()
            .unwrap()
            .delta_ticks
    };
    let exact = run(TargetSpec::All);
    let sampled = run(TargetSpec::Sample { size: 10, seed: 9 });
    let ratio = exact.max(sampled) / exact.min(sampled);
    assert!(ratio < 3.0, "sampled γ {sampled} too far from exact {exact}");
}
