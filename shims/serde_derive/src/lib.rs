//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the serde shim.
//!
//! Parses the type definition directly from the token stream (the offline
//! build has no `syn`), covering the shapes used in this workspace:
//!
//! * structs with named fields → JSON objects;
//! * newtype structs → the inner value (so `#[serde(transparent)]` is
//!   automatically honored);
//! * tuple structs → arrays;
//! * enums → externally tagged like real serde: unit variants as
//!   `"Name"`, struct variants as `{"Name": {..}}`, one-field tuple
//!   variants as `{"Name": value}`, longer tuple variants as
//!   `{"Name": [..]}`.
//!
//! Generic types and `where` clauses are rejected with a compile error —
//! nothing in the workspace derives on them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct TypeDef {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_type_def(input);
    let body = match &def.shape {
        Shape::Struct(fields) => serialize_fields_expr(fields, "self.", ""),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{n}::{v} => serde::Value::String(\"{v}\".to_string()),\n",
                        n = def.name,
                        v = vname
                    )),
                    Fields::Tuple(count) => {
                        let binds: Vec<String> =
                            (0..*count).map(|i| format!("__f{i}")).collect();
                        let inner = if *count == 1 {
                            "serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            format!(
                                "serde::Value::Array(vec![{}])",
                                binds
                                    .iter()
                                    .map(|b| format!("serde::Serialize::to_value({b})"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        };
                        arms.push_str(&format!(
                            "{n}::{v}({binds}) => serde::Value::Object(vec![(\"{v}\".to_string(), {inner})]),\n",
                            n = def.name,
                            v = vname,
                            binds = binds.join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let inner = serialize_fields_expr(fields, "", "");
                        arms.push_str(&format!(
                            "{n}::{v} {{ {binds} }} => serde::Value::Object(vec![(\"{v}\".to_string(), {inner})]),\n",
                            n = def.name,
                            v = vname,
                            binds = names.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}",
        name = def.name
    )
    .parse()
    .expect("serde shim derive emitted invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_type_def(input);
    // Typed deserialization is unused in this workspace (reports are only
    // inspected through `serde_json::Value`); emit a stub so the derive
    // compiles, failing loudly if it is ever exercised.
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(_value: &serde::Value) -> Result<Self, serde::json::Error> {{\n\
                 Err(serde::json::Error::new(\
                     \"typed deserialization of `{name}` is not supported by the serde shim\"))\n\
             }}\n\
         }}",
        name = def.name
    )
    .parse()
    .expect("serde shim derive emitted invalid Rust")
}

/// Renders the `Value` expression serializing `fields`. For named fields,
/// each field is accessed as `{access}{field}` (`self.` for structs, bare
/// bindings for enum struct variants).
fn serialize_fields_expr(fields: &Fields, access: &str, _suffix: &str) -> String {
    match fields {
        Fields::Unit => "serde::Value::Null".to_string(),
        Fields::Tuple(1) => format!("serde::Serialize::to_value(&{access}0)"),
        Fields::Tuple(count) => {
            let items: Vec<String> = (0..*count)
                .map(|i| format!("serde::Serialize::to_value(&{access}{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), serde::Serialize::to_value(&{access}{f}))")
                })
                .collect();
            format!("serde::Value::Object(vec![{}])", entries.join(", "))
        }
    }
}

fn parse_type_def(input: TokenStream) -> TypeDef {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
            other => panic!("serde shim derive: unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: unsupported enum body: {other:?}"),
        },
        other => panic!("serde shim derive: expected `struct` or `enum`, got `{other}`"),
    };
    TypeDef { name, shape }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-fields body, skipping per-field attributes,
/// visibility, and types (tracking `<>` depth so type arguments containing
/// commas do not split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else { break };
        fields.push(id.to_string());
        i += 1; // field name
        i += 1; // `:`
        let mut angle = 0i64;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of fields in a tuple body (top-level comma count, ignoring a
/// trailing comma; commas inside nested groups are invisible here, and
/// `<>`-depth is tracked for type arguments).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle = 0i64;
    let mut trailing_comma = false;
    for (pos, tok) in tokens.iter().enumerate() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if pos + 1 == tokens.len() {
                    trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else { break };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        // skip an explicit discriminant, then the separating comma
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
    }
    variants
}
