//! Workspace-local stand-in for `rustc-hash`: the Fx hash function (the
//! multiply-xor scheme long used by rustc itself) and the `FxHashMap` /
//! `FxHashSet` aliases. Fx is not DoS-resistant — it trades that for being
//! several times faster than SipHash on small fixed-width keys, which is
//! exactly the trip-histogram workload: billions of `(u32, u32)` inserts.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// The `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-xor hasher: `state = (state rotl 5 ^ word) * SEED` per
/// input word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works_and_distributes() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..1_000u32 {
            *m.entry((i % 37, i / 37)).or_insert(0) += 1;
        }
        assert_eq!(m.values().sum::<u64>(), 1_000);

        // sanity: distinct small tuples hash distinctly (no catastrophic
        // collapse of the mix function)
        let mut hashes: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1_000u32 {
            let mut h = FxHasher::default();
            h.write_u32(i);
            h.write_u32(i ^ 0xdead);
            hashes.insert(h.finish());
        }
        assert!(hashes.len() > 990);
    }
}
