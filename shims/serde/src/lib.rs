//! Workspace-local stand-in for `serde`.
//!
//! The build environment has no network access, so the real `serde` cannot
//! be fetched. This shim provides the subset the workspace relies on —
//! `Serialize` / `Deserialize` derives and JSON emission through the sibling
//! `serde_json` shim — behind the same paths, so the analysis code is written
//! exactly as it would be against the real crates and can swap to them by
//! flipping the path dependencies back to registry versions.
//!
//! Design: serialization goes through an owned JSON tree ([`json::Value`])
//! rather than a streaming serializer. Reports serialized here are a few
//! kilobytes to a few megabytes; tree overhead is irrelevant next to the
//! sweep computations.

pub mod json;

pub use json::Value;
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// Types that can render themselves as a JSON value tree.
///
/// Mirrors `serde::Serialize` in spirit; the derive macro emits
/// field-by-field [`Value::Object`] construction.
pub trait Serialize {
    /// The JSON value of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a JSON value tree.
///
/// Only `Value` itself round-trips in this shim (which is all the workspace
/// deserializes: reports are *inspected* as `serde_json::Value`, never
/// rebuilt into typed structs). Derived impls exist so `#[derive(Deserialize)]`
/// compiles, but they report `Unsupported` if ever exercised.
pub trait Deserialize: Sized {
    /// Attempts to rebuild `Self` from a parsed value.
    fn from_value(value: &Value) -> Result<Self, json::Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, json::Error> {
        Ok(value.clone())
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}
int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // i128 covers every value this workspace produces (trip counts);
        // saturate rather than wrap if that ever changes
        Value::Int(i128::try_from(*self).unwrap_or(i128::MAX))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}
tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Map keys: JSON requires strings, so non-string keys render through their
/// `Debug` form (matching what this workspace needs for diagnostic dumps of
/// tuple-keyed histograms; the real serde would reject those at runtime).
pub trait SerializeMapKey {
    /// String form of the key.
    fn to_key(&self) -> String;
}

impl SerializeMapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
}

impl SerializeMapKey for &str {
    fn to_key(&self) -> String {
        (*self).to_owned()
    }
}

macro_rules! debug_key_impls {
    ($($t:ty),*) => {$(
        impl SerializeMapKey for $t {
            fn to_key(&self) -> String {
                format!("{self:?}")
            }
        }
    )*};
}
debug_key_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
impl<A: std::fmt::Debug, B: std::fmt::Debug> SerializeMapKey for (A, B) {
    fn to_key(&self) -> String {
        format!("{self:?}")
    }
}

impl<K: SerializeMapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // deterministic output: sort by rendered key
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: SerializeMapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_containers() {
        assert_eq!(42u32.to_value(), Value::Int(42));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(vec![1u32, 2].to_value(), Value::Array(vec![Value::Int(1), Value::Int(2)]));
        assert_eq!(
            (1u32, "x").to_value(),
            Value::Array(vec![Value::Int(1), Value::String("x".into())])
        );
    }

    #[test]
    fn hashmap_output_is_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        let Value::Object(entries) = m.to_value() else { panic!("object") };
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[1].0, "b");
    }
}
