//! The JSON tree: value model, text emission, and a recursive-descent parser.
//!
//! Non-finite floats serialize as `null`, matching `serde_json`'s behavior,
//! so reports containing `NaN` scores (degenerate streams) stay valid JSON.

use std::fmt;
use std::ops::Index;

/// An owned JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number (kept exact; `i128` covers every integer type the
    /// workspace serializes, including distance sums).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered pairs (no duplicate keys emitted by the
    /// derive macro).
    Object(Vec<(String, Value)>),
}

/// Parse or conversion failure.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message (public so derived
    /// `Deserialize` stubs can construct it).
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

static NULL: Value = Value::Null;

impl Value {
    /// Member lookup; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric view as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric view as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Numeric view as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // `{f}` prints integral floats without a dot; keep the
                    // dot so the value parses back as a float downstream.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (must consume all non-whitespace input).
    pub fn parse(text: &str) -> Result<Value, Error> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::new(format!("trailing input at byte {pos}")));
        }
        Ok(value)
    }
}

/// `value[key]`, `serde_json` style: missing members index to `null`.
impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::new(format!("expected `{lit}` at byte {pos}", pos = *pos)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(Error::new("unexpected end of input"));
    };
    match b {
        b'n' => expect(bytes, pos, "null").map(|()| Value::Null),
        b't' => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
        b'f' => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Value::String),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => {
                        return Err(Error::new(format!("bad array at byte {pos}", pos = *pos)))
                    }
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => {
                        return Err(Error::new(format!("bad object at byte {pos}", pos = *pos)))
                    }
                }
            }
        }
        _ => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}", pos = *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(Error::new("unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| Error::new("short \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::new("bad \\u escape"))?;
                        *pos += 4;
                        // surrogate pairs are not produced by this shim's
                        // writer; map lone surrogates to the replacement char
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(Error::new("unknown escape")),
                }
            }
            _ => {
                // copy one UTF-8 scalar
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8"))?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err(Error::new("unterminated string"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut float = false;
    if bytes.get(*pos) == Some(&b'.') {
        float = true;
        *pos += 1;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        float = true;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("expected number at byte {start}")));
    }
    if float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("bad float `{text}`")))
    } else {
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|_| Error::new(format!("bad integer `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("γ scale".into())),
            ("k".into(), Value::Int(42)),
            ("score".into(), Value::Float(0.5)),
            ("nan".into(), Value::Float(f64::NAN)),
            ("items".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        let text = v.to_string_pretty();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back["k"].as_u64(), Some(42));
        assert_eq!(back["score"].as_f64(), Some(0.5));
        assert!(back["nan"].is_null(), "NaN must serialize as null");
        assert_eq!(back["items"].as_array().unwrap().len(), 2);
        assert_eq!(back["items"][0].as_bool(), Some(true));
        assert_eq!(back["name"].as_str(), Some("γ scale"));
    }

    #[test]
    fn parses_numbers_and_escapes() {
        let v = Value::parse(r#"{"a": -1.5e3, "b": "x\ny\"z", "c": [1,2,3]}"#).unwrap();
        assert_eq!(v["a"].as_f64(), Some(-1500.0));
        assert_eq!(v["b"].as_str(), Some("x\ny\"z"));
        assert_eq!(v["c"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn missing_member_indexes_to_null() {
        let v = Value::parse("{}").unwrap();
        assert!(v["absent"].is_null());
        assert!(v["absent"]["deeper"].is_null());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("nul").is_err());
    }

    #[test]
    fn integral_floats_keep_a_dot() {
        assert_eq!(Value::Float(3.0).to_string_compact(), "3.0");
        assert_eq!(Value::Int(3).to_string_compact(), "3");
    }
}
