//! Workspace-local stand-in for `proptest`.
//!
//! Implements the subset the workspace's property suites use — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_filter` /
//! `prop_filter_map`, range and tuple strategies, [`collection::vec`] and
//! [`collection::btree_set`], `any::<bool>()`, and the `prop_assert*` /
//! `prop_assume` macros.
//!
//! Differences from the real crate, deliberate for an offline, reproducible
//! build: generation is seeded deterministically from the test name (every
//! run explores the identical case sequence, so CI failures always reproduce
//! locally), and there is no shrinking — failing inputs surface exactly as
//! generated. The per-test case counts here are small enough that unshrunk
//! inputs stay readable.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Per-suite configuration (`cases` is the only knob the workspace uses).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generation source (xoshiro256++ seeded from the test name).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds deterministically from an arbitrary tag (the test's name).
    pub fn deterministic(tag: &str) -> Self {
        // FNV-1a over the tag, then splitmix64 expansion
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tag.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe producing random values; `generate` returns `None` when a
/// filter rejects the draw (the driver then retries with fresh randomness).
pub trait Strategy {
    /// The produced type.
    type Value;

    /// Draws one value, or `None` on filter rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Keeps only values passing `pred`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _why: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { base: self, pred }
    }

    /// Maps through a fallible `f`, rejecting `None` results.
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        _why: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { base: self, f }
    }

    /// Type-erases the strategy (compatibility with `proptest` signatures).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.base.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.base.generate(rng).filter(|v| (self.pred)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.base.generate(rng).and_then(&self.f)
    }
}

/// A strategy always producing a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws a uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy behind [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                Some((self.start as i128 + rng.below(width) as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as i128 - start as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return Some(rng.next_u64() as $t);
                }
                Some((start as i128 + rng.below(width as u64) as i128) as $t)
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        Some(x.min(self.end - (self.end - self.start) * f64::EPSILON))
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        let (start, end) = (*self.start(), *self.end());
        Some(start + rng.unit_f64() * (end - start))
    }
}

macro_rules! tuple_strategies {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$n.generate(rng)?,)+))
            }
        }
    )+};
}
tuple_strategies! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A `Vec` of `len ∈ size` elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// A `BTreeSet` with `len ∈ size` distinct elements from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let width = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(width) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                // retry rejected elements a few times before giving up on
                // the whole draw
                let mut element = None;
                for _ in 0..16 {
                    if let Some(v) = self.element.generate(rng) {
                        element = Some(v);
                        break;
                    }
                }
                out.push(element?);
            }
            Some(out)
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<BTreeSet<S::Value>> {
            let width = (self.size.end - self.size.start).max(1) as u64;
            let target = self.size.start + rng.below(width) as usize;
            let mut out = BTreeSet::new();
            // duplicates shrink the draw; cap the attempts so tight domains
            // terminate
            for _ in 0..target.saturating_mul(20).max(20) {
                if out.len() >= target {
                    break;
                }
                if let Some(v) = self.element.generate(rng) {
                    out.insert(v);
                }
            }
            if out.len() >= self.size.start.max(1).min(target.max(1)) {
                Some(out)
            } else {
                None
            }
        }
    }
}

pub use collection::{BTreeSetStrategy, VecStrategy};

/// Asserts inside a property (plain `assert!` semantics in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when `cond` is false (the case does not count
/// toward the accepted total in real proptest; here it does, which only
/// means slightly fewer effective cases — acceptable for these suites).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// The test-suite macro: expands each `fn name(arg in strategy, ...) {...}`
/// into a `#[test]` that draws `cases` accepted inputs deterministically and
/// runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u64 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= (config.cases as u64) * 500 + 10_000,
                        "proptest shim: strategies rejected too many draws in `{}`",
                        stringify!($name)
                    );
                    $(
                        let $arg = match $crate::Strategy::generate(&($strat), &mut rng) {
                            Some(value) => value,
                            None => continue,
                        };
                    )*
                    accepted += 1;
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = super::TestRng::deterministic("t1");
        for _ in 0..1000 {
            let v = (0u32..6, 0u32..6, 0i64..31).generate(&mut rng).unwrap();
            assert!(v.0 < 6 && v.1 < 6 && (0..31).contains(&v.2));
        }
    }

    #[test]
    fn filter_map_rejects() {
        let strat = (0u32..10).prop_filter_map("even only", |x| (x % 2 == 0).then_some(x));
        let mut rng = super::TestRng::deterministic("t2");
        let mut seen = 0;
        for _ in 0..200 {
            if let Some(x) = strat.generate(&mut rng) {
                assert_eq!(x % 2, 0);
                seen += 1;
            }
        }
        assert!(seen > 50);
    }

    #[test]
    fn collections_honor_size() {
        let mut rng = super::TestRng::deterministic("t3");
        for _ in 0..100 {
            let v = super::collection::vec(0u32..100, 1..12).generate(&mut rng).unwrap();
            assert!((1..12).contains(&v.len()));
            let s = super::collection::btree_set(0u32..6, 1..4).generate(&mut rng);
            if let Some(s) = s {
                assert!(!s.is_empty() && s.len() < 4);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn the_macro_itself_works(x in 1u64..100, flip in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!((1..100).contains(&x));
            prop_assert!(flip as u32 <= 1);
        }
    }
}
