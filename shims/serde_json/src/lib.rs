//! Workspace-local stand-in for `serde_json`, backed by the serde shim's
//! owned [`Value`] tree. Provides the entry points this workspace calls:
//! `to_string` / `to_string_pretty`, `from_str` / `from_slice`, and the
//! indexable [`Value`] with `as_array` / `as_f64` / … accessors.

pub use serde::json::Error;
pub use serde::Value;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string_compact())
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string_pretty())
}

/// Converts `value` into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON text into `T` (in this shim, `T` is virtually always
/// [`Value`]; typed targets derive a stub that reports unsupported).
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = Value::parse(text)?;
    T::from_value(&value)
}

/// Parses JSON bytes into `T`.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|_| Error::new("input is not UTF-8"))?;
    from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_and_value_round_trip() {
        let json = to_string_pretty(&vec![(1u32, 2.5f64), (3, 4.0)]).unwrap();
        let v: Value = from_str(&json).unwrap();
        assert_eq!(v[0][0].as_u64(), Some(1));
        assert_eq!(v[1][1].as_f64(), Some(4.0));
        let compact = to_string(&v).unwrap();
        assert!(!compact.contains('\n'));
    }
}
