//! Workspace-local stand-in for `criterion`.
//!
//! A deliberately small wall-clock harness with criterion's calling
//! conventions (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_with_input`, `Throughput`), so the bench files compile unchanged
//! and still produce useful numbers offline:
//!
//! * each benchmark is warmed up, then timed over enough iterations to fill
//!   a measurement window (`CRITERION_MEASURE_MS`, default 700 ms — long
//!   enough for stable medians on the workloads here, short enough that the
//!   full suite finishes in minutes);
//! * results print as `name ... median time/iter [± spread] (throughput)`;
//! * a machine-readable `name\tmedian_ns\titers` line stream is appended to
//!   `CRITERION_TSV` when that env var is set (the `BENCH_sweep.json`
//!   emitter uses its own JSON writer instead, but perf-tracking scripts can
//!   tap this stream for any bench without re-running it under a profiler);
//! * under `--test` (what `cargo test` passes to `harness = false` bench
//!   targets) every closure runs exactly once, untimed — benches double as
//!   smoke tests.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-rate annotation for a group; reported as elements (or bytes) per
/// second next to the time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `group/function/parameter` style id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// Id from the parameter alone (the common form in this workspace).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// The timing loop handle passed to bench closures.
pub struct Bencher<'a> {
    mode: Mode,
    measure: Duration,
    result: &'a mut Option<Sample>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Full measurement (`--bench` was passed).
    Measure,
    /// Run each closure once, untimed (test mode).
    Smoke,
}

struct Sample {
    median_ns: f64,
    spread_ns: f64,
    iters: u64,
}

impl Bencher<'_> {
    /// Times `f`, discarding its output (criterion semantics: the return
    /// value is a liveness root, not part of the measurement).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.mode == Mode::Smoke {
            black_box(f());
            return;
        }
        // warmup + iteration-count calibration
        let warmup_end = Instant::now() + self.measure / 4;
        let mut calib_iters = 0u64;
        let calib_start = Instant::now();
        while Instant::now() < warmup_end || calib_iters == 0 {
            black_box(f());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;

        // split the measurement window into ~10 samples, each of enough
        // iterations to dominate timer overhead
        let total_iters = ((self.measure.as_secs_f64() / per_iter).ceil() as u64).max(10);
        let samples = 10u64;
        let iters_per_sample = (total_iters / samples).max(1);
        let mut times: Vec<f64> = Vec::with_capacity(samples as usize);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            times.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        times.sort_by(f64::total_cmp);
        let median = times[times.len() / 2];
        let spread = times[times.len() - 1] - times[0];
        *self.result = Some(Sample {
            median_ns: median * 1e9,
            spread_ns: spread * 1e9,
            iters: samples * iters_per_sample,
        });
    }
}

/// The harness root.
pub struct Criterion {
    mode: Mode,
    measure: Duration,
    tsv: Option<std::fs::File>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::with_mode(Mode::Measure)
    }
}

impl Criterion {
    fn with_mode(mode: Mode) -> Self {
        let measure_ms: u64 = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(700);
        let tsv = std::env::var("CRITERION_TSV").ok().map(|path| {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .expect("cannot open CRITERION_TSV file")
        });
        Criterion { mode, measure: Duration::from_millis(measure_ms), tsv }
    }

    /// Builds the harness from process arguments. Mirrors real criterion:
    /// full measurement only when cargo passes `--bench` (what `cargo
    /// bench` does); any other invocation — `cargo test --benches`, running
    /// the binary directly — smoke-runs each closure once.
    pub fn from_args() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion::with_mode(if measure { Mode::Measure } else { Mode::Smoke })
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Benches a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut result = None;
        let mut bencher =
            Bencher { mode: self.mode, measure: self.measure, result: &mut result };
        f(&mut bencher);
        self.report(name, None, result);
        self
    }

    fn report(&mut self, name: &str, throughput: Option<Throughput>, result: Option<Sample>) {
        match (self.mode, result) {
            (Mode::Smoke, _) => println!("bench {name}: smoke ok"),
            (Mode::Measure, Some(s)) => {
                let rate = throughput.map(|t| match t {
                    Throughput::Elements(n) => {
                        format!("  {:>10}/s", human_rate(n as f64 / (s.median_ns / 1e9)))
                    }
                    Throughput::Bytes(n) => {
                        format!("  {:>10}B/s", human_rate(n as f64 / (s.median_ns / 1e9)))
                    }
                });
                println!(
                    "bench {name:<44} {:>12}/iter  ±{:<10} ({} iters){}",
                    human_time(s.median_ns),
                    human_time(s.spread_ns),
                    s.iters,
                    rate.unwrap_or_default()
                );
                if let Some(f) = &mut self.tsv {
                    let _ = writeln!(f, "{name}\t{:.1}\t{}", s.median_ns, s.iters);
                }
            }
            (Mode::Measure, None) => println!("bench {name}: no measurement recorded"),
        }
    }

    /// Trailing summary hook (kept for call-site compatibility).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sample-count hint; this harness sizes samples by wall-clock window
    /// instead, so the value is accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-iteration work rate annotation.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benches `f` against `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut result = None;
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            measure: self.criterion.measure,
            result: &mut result,
        };
        f(&mut bencher, input);
        let name = format!("{}/{}", self.name, id.label);
        let throughput = self.throughput;
        self.criterion.report(&name, throughput, result);
        self
    }

    /// Benches a closure with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut result = None;
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            measure: self.criterion.measure,
            result: &mut result,
        };
        f(&mut bencher);
        let name = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.criterion.report(&name, throughput, result);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_rate(per_sec: f64) -> String {
    if per_sec < 1e3 {
        format!("{per_sec:.0}")
    } else if per_sec < 1e6 {
        format!("{:.1}K", per_sec / 1e3)
    } else if per_sec < 1e9 {
        format!("{:.1}M", per_sec / 1e6)
    } else {
        format!("{:.2}G", per_sec / 1e9)
    }
}

/// Declares a bench group function, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_MEASURE_MS", "30");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.throughput(Throughput::Elements(1000));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| (0..1000u64).map(|i| i.wrapping_mul(x)).sum::<u64>())
        });
        group.finish();
        std::env::remove_var("CRITERION_MEASURE_MS");
    }

    #[test]
    fn formatting_is_sane() {
        assert!(human_time(1.5e3).contains("µs"));
        assert!(human_time(2.5e7).contains("ms"));
        assert!(human_rate(5e6).ends_with('M'));
    }
}
