//! Workspace-local stand-in for `rand`.
//!
//! Provides the exact subset the synthetic generators use: a seedable
//! deterministic [`rngs::StdRng`] plus `Rng::{gen, gen_range}` over the
//! integer / float range types appearing in the workspace. The generator is
//! xoshiro256++ seeded through splitmix64 — high-quality and, crucially for
//! reproducible figures, fully deterministic for a given seed across
//! platforms. (It is NOT the same bitstream as crates.io `rand`'s `StdRng`,
//! which is explicitly documented as non-portable across versions anyway;
//! the workspace only relies on *stability under a fixed build*, which this
//! provides strictly.)

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling over a range type (the shim's analog of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform sample from `self`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit source behind every `Rng` convenience method.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Values drawable from the plain `gen()` call.
pub trait Standard: Sized {
    /// Draws a uniform value of `Self`.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Convenience sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of `T` (`f64` in `[0,1)`, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform sample from `range`; panics on empty ranges.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Debiased uniform integer in `[0, bound)` via Lemire's multiply-shift
/// rejection method.
fn uniform_below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample an empty range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, width) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    // full-width i64/u64 range: a raw draw is already uniform
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, width as u64) as i128) as $t
            }
        }
    )*};
}
int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::draw(rng);
        let x = self.start + u * (self.end - self.start);
        // guard the open upper bound against rounding
        if x >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            x
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::draw(rng) * (end - start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // expand the seed through splitmix64, per the xoshiro authors'
            // recommendation
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result =
                self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for call sites that ask for a small generator.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&x));
            let y = rng.gen_range(0u32..=9);
            assert!(y <= 9);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }
}
