//! End-to-end analysis of an email/message network — the workloads that
//! motivate the paper's introduction.
//!
//! Uses the Irvine-like dataset stand-in by default (1 509 users, 48 000
//! messages, 48 days; see DESIGN.md for the substitution rationale). Pass a
//! profile name to analyze another stand-in, or a path to a real trace file
//! in `u v t` / KONECT format:
//!
//! ```sh
//! cargo run --release --example email_network                     # irvine
//! cargo run --release --example email_network -- manufacturing
//! cargo run --release --example email_network -- path/to/out.trace
//! ```

use saturn::prelude::*;
use saturn::synth::profiles::HOUR;

fn load(arg: Option<&str>) -> (String, LinkStream) {
    match arg {
        None => ("irvine (stand-in)".into(), DatasetProfile::irvine().generate(1)),
        Some(name) => {
            let profile = match name {
                "irvine" => Some(DatasetProfile::irvine()),
                "facebook" => Some(DatasetProfile::facebook()),
                "enron" => Some(DatasetProfile::enron()),
                "manufacturing" => Some(DatasetProfile::manufacturing()),
                _ => None,
            };
            match profile {
                Some(p) => (format!("{} (stand-in)", p.name), p.generate(1)),
                None => {
                    let s = saturn::linkstream::io::read_path(name, Directedness::Directed)
                        .unwrap_or_else(|e| {
                            eprintln!("cannot read {name}: {e}");
                            std::process::exit(1);
                        });
                    (name.into(), s)
                }
            }
        }
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let (name, stream) = load(arg.as_deref());
    let stats = stream.stats();
    println!(
        "dataset {name}: {} nodes, {} messages, {:.1} days, {:.2} msgs/person/day",
        stats.nodes,
        stats.links,
        stats.span as f64 / 86_400.0,
        stats.links as f64 / stats.nodes as f64 / (stats.span as f64 / 86_400.0),
    );

    let t0 = std::time::Instant::now();
    let report = OccupancyMethod::new().grid(SweepGrid::Geometric { points: 48 }).run(&stream);
    let gamma = report.gamma().expect("non-degenerate stream");
    println!(
        "saturation scale γ = {:.1} h (K = {}, M-K proximity {:.4}) [{:.1?}]",
        gamma.delta_ticks / HOUR as f64,
        gamma.k,
        gamma.score,
        t0.elapsed()
    );

    // The proximity curve (Figure 3 right / Figure 5): print a coarse view.
    println!("\nΔ (h)    M-K proximity");
    for r in report.results().iter().step_by(6) {
        let bar = "#".repeat((r.scores.mk_proximity * 120.0) as usize);
        println!("{:>8.2}  {:.4} {bar}", r.delta_ticks / HOUR as f64, r.scores.mk_proximity);
    }

    // Guidance below γ, as Section 5 recommends ("one may prefer to choose an
    // aggregation period slightly lower than γ").
    println!(
        "\nrecommendation: aggregate with Δ in [{:.1} h, {:.1} h]; beyond {:.1} h propagation is altered",
        gamma.delta_ticks / HOUR as f64 / 10.0,
        gamma.delta_ticks / HOUR as f64,
        gamma.delta_ticks / HOUR as f64,
    );
}
