//! Reproduces the Section 6 study on synthetic networks at a reduced size:
//! how the saturation scale responds to the activity level (time-uniform
//! networks) and to temporal heterogeneity (two-mode networks).
//!
//! ```sh
//! cargo run --release --example synthetic_study
//! ```

use saturn::prelude::*;

fn gamma_of(stream: &LinkStream) -> f64 {
    OccupancyMethod::new()
        .grid(SweepGrid::Geometric { points: 28 })
        .refine(2, 6)
        .run(stream)
        .gamma()
        .expect("non-degenerate stream")
        .delta_ticks
}

fn main() {
    // --- Figure 6 (left): γ vs mean inter-contact time --------------------
    println!("time-uniform networks (n = 30, T = 50 000 s)");
    println!("{:>4} {:>18} {:>14} {:>8}", "N", "inter-contact (s)", "γ (s)", "γ/ict");
    for links_per_pair in [4u32, 6, 10, 16, 25, 40] {
        let cfg = TimeUniform { nodes: 30, links_per_pair, span: 50_000, seed: 7 };
        let gamma = gamma_of(&cfg.generate());
        let ict = cfg.mean_inter_contact();
        println!("{links_per_pair:>4} {ict:>18.1} {gamma:>14.1} {:>8.3}", gamma / ict);
    }
    println!("(the paper: γ is proportional to the inter-contact time)\n");

    // --- Figure 6 (right): γ vs share of low-activity time ----------------
    println!("two-mode networks (n = 30, 10 alternations, T = 50 000 s)");
    println!("{:>12} {:>12}", "low-share %", "γ (s)");
    for share in [0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0] {
        let cfg = TwoMode {
            nodes: 30,
            alternations: 10,
            span: 50_000,
            links_high: 12,
            links_low: 1,
            low_share: share,
            seed: 13,
        };
        let gamma = gamma_of(&cfg.generate());
        println!("{:>12.0} {gamma:>12.1}", share * 100.0);
    }
    println!(
        "(the paper: γ stays near the high-activity value until low activity\n\
         occupies ~80% of the time, then rises toward the low-activity value)"
    );
}
