//! The paper's Section 9 perspectives, exercised end-to-end:
//!
//! 1. **links with duration** — generate an RFID-style contact stream
//!    (interval links), punctualize it by periodic oversampling (the
//!    measurement model of [12, 3]), and study how the detected saturation
//!    scale responds to the sampling period;
//! 2. **temporal heterogeneity** — segment a bursty stream into high/low
//!    activity periods and compare per-segment saturation scales with the
//!    whole-stream one.
//!
//! ```sh
//! cargo run --release --example contacts_and_heterogeneity
//! ```

use saturn::core::{heterogeneous_analysis, ActivityClass, HeterogeneityConfig};
use saturn::prelude::*;
use saturn::synth::ContactModel;

fn gamma_of(stream: &LinkStream) -> f64 {
    OccupancyMethod::new()
        .grid(SweepGrid::Geometric { points: 24 })
        .run(stream)
        .gamma()
        .expect("non-degenerate stream")
        .delta_ticks
}

fn main() {
    // --- 1. duration links through oversampling ---------------------------
    println!("— links with duration (Section 9, perspective 1) —");
    let contacts = ContactModel {
        nodes: 25,
        span: 100_000,
        contacts_per_pair: 6.0,
        mean_duration: 90.0,
        seed: 17,
    }
    .generate();
    println!(
        "contact stream: {} interval links, mean duration {:.0} ticks",
        contacts.len(),
        contacts.mean_duration()
    );

    println!("{:>16} {:>10} {:>10}", "sampling period", "events", "γ (ticks)");
    for period in [20i64, 60, 180, 600] {
        let punctual = contacts.sample_periodic(period, 0).expect("live contacts");
        let gamma = gamma_of(&punctual);
        println!("{period:>16} {:>10} {gamma:>10.1}", punctual.len());
    }
    println!(
        "(finer sampling inflates the event count without changing the\n\
         underlying dynamics — γ must be read relative to the sampling period)\n"
    );

    // --- 2. heterogeneity-aware analysis ----------------------------------
    println!("— temporal heterogeneity (Section 9, perspective 2) —");
    let bursty = TwoMode {
        nodes: 25,
        alternations: 6,
        span: 60_000,
        links_high: 10,
        links_low: 1,
        low_share: 0.6,
        seed: 23,
    }
    .generate();
    let report = heterogeneous_analysis(
        &bursty,
        HeterogeneityConfig { bins: 60, grid_points: 18, min_segment_events: 40, threads: 0 },
    );

    println!(
        "{:>10} {:>10} {:>8} {:>10} {:>12}",
        "start", "end", "class", "events", "γ (ticks)"
    );
    for seg in &report.segments {
        println!(
            "{:>10} {:>10} {:>8} {:>10} {:>12}",
            seg.start,
            seg.end,
            match seg.class {
                ActivityClass::High => "high",
                ActivityClass::Low => "low",
            },
            seg.events,
            seg.gamma_ticks.map_or("—".into(), |g| format!("{g:.1}")),
        );
    }
    println!(
        "\nwhole-stream γ = {:.1} ticks; most conservative per-segment γ = {}",
        report.whole_stream_gamma_ticks,
        report.min_segment_gamma_ticks.map_or("—".to_string(), |g| format!("{g:.1} ticks")),
    );
    println!(
        "==> aggregate everything at the per-segment minimum, or aggregate each\n\
         segment with its own window length (the paper's two suggested options)"
    );
}
