//! Choosing a safe aggregation window for a study, the Section 8 way:
//! combine the saturation scale with the direct loss measures (lost shortest
//! transitions and trip elongation) to pick a window with a quantified
//! information budget.
//!
//! ```sh
//! cargo run --release --example choose_window [max_lost_fraction]
//! ```

use saturn::core::{validation_sweep, ValidationOptions};
use saturn::prelude::*;

fn main() {
    let budget: f64 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(0.10); // accept at most 10% lost shortest transitions

    // A mid-sized stand-in (scaled Manufacturing: office rhythm, high
    // activity) keeps this example snappy.
    let profile = DatasetProfile::manufacturing().scaled(0.35);
    let stream = profile.generate(3);
    println!(
        "stream: {} nodes, {} messages over {:.0} days; loss budget {:.0}%",
        stream.node_count(),
        stream.len(),
        stream.span() as f64 / 86_400.0,
        budget * 100.0
    );

    // 1. The saturation scale: upper bound for any propagation-based study.
    let report = OccupancyMethod::new().grid(SweepGrid::Geometric { points: 32 }).run(&stream);
    let gamma = report.gamma().expect("non-degenerate stream");
    println!("γ = {:.2} h — never aggregate beyond this", gamma.delta_ticks / 3_600.0);

    // 2. The loss curves on the range up to γ.
    let validation = validation_sweep(
        &stream,
        &SweepGrid::Geometric { points: 24 },
        TargetSpec::All,
        &ValidationOptions::default(),
    );
    println!("\n{:>10} {:>12} {:>12} {:>12}", "Δ (h)", "lost trans.", "elongation", "verdict");
    let mut chosen: Option<f64> = None;
    for p in &validation.points {
        let delta_h = p.delta_ticks / 3_600.0;
        if p.delta_ticks > gamma.delta_ticks {
            continue; // beyond γ: out of the question
        }
        let ok = p.lost_transitions <= budget;
        if ok {
            chosen = Some(chosen.map_or(delta_h, |c: f64| c.max(delta_h)));
        }
        println!(
            "{:>10.3} {:>12.3} {:>12.3} {:>12}",
            delta_h,
            p.lost_transitions,
            p.elongation.mean,
            if ok { "within budget" } else { "too lossy" }
        );
    }

    match chosen {
        Some(delta_h) => println!(
            "\n==> choose Δ ≈ {delta_h:.2} h: the largest window within the loss budget \
             (γ = {:.2} h remains the hard ceiling)",
            gamma.delta_ticks / 3_600.0
        ),
        None => println!(
            "\n==> no window meets the {budget:.0}% budget; use the stream unaggregated \
             or relax the budget"
        ),
    }
}
