//! Quickstart: detect the saturation scale of a small synthetic stream.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use saturn::prelude::*;

fn main() {
    // A time-uniform network (Section 6 of the paper): 40 nodes, 8 links per
    // pair, uniformly spread over ~28 hours of 1-second ticks.
    let stream =
        TimeUniform { nodes: 40, links_per_pair: 8, span: 100_000, seed: 42 }.generate();
    let stats = stream.stats();
    println!(
        "stream: {} nodes, {} links, span {} s, mean inter-contact {:.1} s",
        stats.nodes, stats.links, stats.span, stats.mean_inter_contact
    );

    // The occupancy method, with the paper's defaults (M-K proximity,
    // geometric Δ grid, exact all-pairs trips).
    let report = OccupancyMethod::new().grid(SweepGrid::Geometric { points: 32 }).run(&stream);

    println!("{}", report.render_text(1.0, "s"));

    let gamma = report.gamma().expect("non-degenerate stream");
    println!(
        "==> aggregate this stream with Δ <= {:.0} s ({} windows) to preserve propagation",
        gamma.delta_ticks, gamma.k
    );

    // Check the two extremes the paper describes: at fine Δ the occupancy
    // distribution concentrates near 0, at Δ = T it concentrates at 1.
    let fine = report.results().first().unwrap();
    let coarse = report.results().last().unwrap();
    println!(
        "finest Δ: mean occupancy {:.4} | Δ = T: fraction at occupancy 1 = {:.2}",
        fine.mean_rate, coarse.fraction_at_one
    );
}
